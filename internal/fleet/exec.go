package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"safemem/internal/apps"
	"safemem/internal/bench"
	"safemem/internal/campaign"
)

// ErrTransient marks an execution failure worth retrying: the job itself
// is sound but this attempt hit weather — chaos-injected faults, or a
// hardware-verdict storm on an environment-shared resource. Executors wrap
// transient failures with it (errors.Is unwrapping applies); everything
// else is permanent and fails the job without burning retries.
var ErrTransient = errors.New("transient failure")

// Executor runs one job attempt. opHook, when non-nil, must be threaded
// into the run's per-op instrumentation (chaos injection); executors for
// job kinds without per-op structure call it once before the run instead.
// The returned bytes are the job's canonical result — they must depend
// only on the spec, never on the attempt, worker, or host.
type Executor func(ctx context.Context, spec JobSpec, opHook func(op int) error) (json.RawMessage, error)

// Execute is the default executor behind a serving fleet.
func Execute(ctx context.Context, spec JobSpec, opHook func(op int) error) (json.RawMessage, error) {
	switch spec.Kind {
	case "", KindScenario:
		return runScenarioJob(ctx, spec, opHook)
	case KindApp:
		return runAppJob(ctx, spec, opHook)
	default:
		return nil, fmt.Errorf("fleet: unknown job kind %q", spec.Kind)
	}
}

// ctxFailure reports whether err is the run being cancelled (deadline or
// drain), which must surface as a scheduling outcome, not a verdict.
func ctxFailure(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runScenarioJob executes one campaign scenario under one configuration
// and returns the oracle's verdict. A deterministic abnormal termination
// (kernel panic, segfault) is part of the result — the client asked "what
// does this scenario do" and the answer is "it crashes the program" — but
// cancellation and transient chaos failures propagate as errors for the
// scheduler to classify.
func runScenarioJob(ctx context.Context, spec JobSpec, opHook func(op int) error) (json.RawMessage, error) {
	toolName := spec.Tool
	if toolName == "" {
		toolName = "both"
	}
	tc, err := campaign.ParseToolConfig(toolName)
	if err != nil {
		return nil, err
	}
	s := campaign.Generate(spec.Seed)
	env := campaign.Env{
		FaultRate:  spec.FaultRate,
		Storm:      spec.Storm,
		Retire:     spec.Retire,
		SampleRate: spec.SampleRate,
		Ctx:        ctx,
		Hook:       opHook,
	}
	res, err := campaign.ExecuteEnv(s, tc, env)
	if err != nil {
		return nil, err
	}
	if res.Err != nil && (ctxFailure(res.Err) || errors.Is(res.Err, ErrTransient)) {
		return nil, res.Err
	}
	v := campaign.Judge(s, tc, res)
	out := &ScenarioResult{
		Kind:           KindScenario,
		Seed:           spec.Seed,
		Tool:           tc.String(),
		Ops:            len(s.Ops),
		Cycles:         uint64(res.Cycles),
		TruePositives:  v.TruePositives,
		FalsePositives: v.FalsePositives,
		Missed:         v.Missed,
		ExpectedMisses: v.ExpectedMisses,
		SampledMisses:  v.SampledMisses,
		Violations:     v.Violations,
		HardwareErrors: res.Stats.HardwareErrors,
		PagesRetired:   res.Resilience.PagesRetired,
	}
	for _, r := range res.Reports {
		out.Reports = append(out.Reports, r.String())
	}
	if res.Err != nil {
		out.Crash = res.Err.Error()
	}
	return json.Marshal(out)
}

// parseAppTool resolves the safemem-run tool vocabulary.
func parseAppTool(name string) (bench.Tool, error) {
	switch name {
	case "", "safemem":
		return bench.ToolSafeMemBoth, nil
	case "safemem-ml":
		return bench.ToolSafeMemML, nil
	case "safemem-mc":
		return bench.ToolSafeMemMC, nil
	case "sample":
		return bench.ToolSample, nil
	case "purify":
		return bench.ToolPurify, nil
	case "pageprot":
		return bench.ToolPageProt, nil
	case "mmp":
		return bench.ToolMMP, nil
	case "none":
		return bench.ToolNone, nil
	}
	return 0, fmt.Errorf("fleet: unknown app tool %q", name)
}

// runAppJob executes one evaluation application under one tool. Apps run
// as a single opaque simulated program, so the op hook fires once up front
// (chaos still reaches the job) and mid-run cancellation is the
// scheduler's watchdog's problem.
func runAppJob(ctx context.Context, spec JobSpec, opHook func(op int) error) (json.RawMessage, error) {
	tool, err := parseAppTool(spec.Tool)
	if err != nil {
		return nil, err
	}
	if opHook != nil {
		if herr := opHook(0); herr != nil {
			return nil, herr
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	cfg := apps.Config{Seed: int64(spec.Seed), Scale: spec.Scale, Buggy: spec.Buggy}
	var res *bench.Result
	if tool == bench.ToolSample {
		rate := spec.SampleRate
		if rate <= 0 {
			rate = campaign.DefaultSampleRate
		}
		res, err = bench.RunSample(spec.App, rate, 0, cfg)
	} else {
		res, err = bench.Run(spec.App, tool, cfg)
	}
	if err != nil {
		return nil, err
	}
	out := &AppResult{
		Kind:    KindApp,
		App:     spec.App,
		Tool:    tool.String(),
		Seed:    spec.Seed,
		Scale:   spec.Scale,
		Buggy:   spec.Buggy,
		Cycles:  uint64(res.Cycles),
		Instrs:  res.Instrs,
		Mallocs: res.Heap.Mallocs,
		Frees:   res.Heap.Frees,
	}
	for _, r := range res.SafeMem {
		out.Reports = append(out.Reports, r.String())
	}
	for _, r := range res.Purify {
		out.Reports = append(out.Reports, r.String())
	}
	for _, r := range res.PageProt {
		out.Reports = append(out.Reports, r.String())
	}
	for _, r := range res.MMP {
		out.Reports = append(out.Reports, r.String())
	}
	if res.Err != nil {
		out.Crash = res.Err.Error()
	}
	return json.Marshal(out)
}
