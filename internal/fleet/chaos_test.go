package fleet

import (
	"testing"
	"time"

	"safemem/internal/campaign"
)

func TestChaosPlanDeterministicAndExclusive(t *testing.T) {
	c := &Chaos{Seed: 7, PanicEvery: 5, SlowEvery: 5, FailEvery: 5}
	counts := map[chaosAction]int{}
	for h := uint64(0); h < 2000; h++ {
		a1 := c.plan(h, 1)
		a2 := c.plan(h, 1)
		if a1 != a2 {
			t.Fatalf("plan(%d) not deterministic: %v vs %v", h, a1, a2)
		}
		counts[a1]++
	}
	for _, a := range []chaosAction{chaosPanic, chaosSlow, chaosFail, chaosNone} {
		if counts[a] == 0 {
			t.Errorf("action %v never drawn across 2000 hashes", a)
		}
	}
	// Roughly 1/5 each (panic takes priority; fail and slow lose some
	// draws to it). Just pin the order of magnitude.
	if n := counts[chaosPanic]; n < 200 || n > 600 {
		t.Errorf("panic drawn %d/2000, want ~400", n)
	}
}

func TestChaosFailHealsAfterConfiguredAttempts(t *testing.T) {
	c := &Chaos{FailEvery: 1, FailAttempts: 2}
	h := uint64(42)
	if c.plan(h, 1) != chaosFail || c.plan(h, 2) != chaosFail {
		t.Fatal("attempts within FailAttempts did not fail")
	}
	if c.plan(h, 3) != chaosNone {
		t.Fatal("attempt past FailAttempts still failing")
	}
}

func TestNilChaosIsInert(t *testing.T) {
	var c *Chaos
	if c.plan(1, 1) != chaosNone {
		t.Fatal("nil chaos planned an action")
	}
}

// TestChaosCampaignEveryJobTerminal is the core of the chaos suite: a
// fleet under panic + transient-failure injection, running real
// simulations, must bring every admitted job to a terminal state, draw
// every injected fate at least once, and never repool a machine whose run
// panicked (pinned through the campaign pool counters).
func TestChaosCampaignEveryJobTerminal(t *testing.T) {
	rel0, drop0 := campaign.PoolStats()

	cfg := testConfig()
	cfg.Workers = 4
	cfg.QueueDepth = 64
	cfg.Chaos = &Chaos{Seed: 3, PanicEvery: 4, FailEvery: 5}
	f := Start(cfg)
	defer f.Close() //nolint:errcheck

	const jobs = 40
	var ids []uint64
	for i := 0; i < jobs; i++ {
		j, err := f.Submit(JobSpec{Seed: uint64(1000 + i), Tool: "both"})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, j.ID)
	}

	states := map[State]int{}
	retried := 0
	for _, id := range ids {
		j := waitTerminal(t, f, id)
		states[j.State]++
		if j.State == StateDone && j.Attempts > 1 {
			retried++
		}
	}
	if states[StateCrashed] == 0 {
		t.Error("chaos drew no panics across 40 jobs (PanicEvery=4)")
	}
	if retried == 0 {
		t.Error("no job healed through retry (FailEvery=5)")
	}
	if states[StateDone] == 0 {
		t.Error("no job completed")
	}
	for s, n := range states {
		if !s.Terminal() {
			t.Errorf("%d jobs left in non-terminal state %q", n, s)
		}
	}

	// Crash safety: every panicked attempt discarded its machine. Other
	// tests share the process-global counters, so pin a lower bound.
	_, drop1 := campaign.PoolStats()
	if dropped := drop1 - drop0; dropped < uint64(states[StateCrashed]) {
		t.Errorf("pool dropped %d machines, want ≥ %d (one per crashed job)",
			dropped, states[StateCrashed])
	}
	rel1, _ := campaign.PoolStats()
	if rel1-rel0 == 0 {
		t.Error("no machine was recycled for the clean jobs")
	}
}

// TestChaosSlowJobsTripWatchdog pins the deadline path end-to-end: a
// chaos-stalled simulation blows its deadline, cancellation lands between
// ops, and the job goes terminal timed-out.
func TestChaosSlowJobsTripWatchdog(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 2
	cfg.JobDeadline = 50 * time.Millisecond
	cfg.WatchdogGrace = 300 * time.Millisecond
	cfg.Chaos = &Chaos{SlowEvery: 1, SlowFor: 2 * time.Second}
	f := Start(cfg)
	defer f.Close() //nolint:errcheck

	j0, err := f.Submit(JobSpec{Seed: 4242, Tool: "ml"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	j := waitTerminal(t, f, j0.ID)
	if j.State != StateTimedOut {
		t.Fatalf("stalled job state = %q (err %q), want timed-out", j.State, j.Error)
	}
}
