package fleet

import (
	"sync"
	"time"
)

// QuotaConfig is the per-tenant token bucket: Rate tokens refill per
// second up to Burst. Rate ≤ 0 disables quota enforcement entirely.
type QuotaConfig struct {
	Rate  float64
	Burst int
}

// bucket is one tenant's token state.
type bucket struct {
	tokens float64
	last   time.Time
}

// quotas enforces QuotaConfig per tenant name. The map grows one entry per
// tenant ever seen — fine for the realistic tenant counts a fleet serves,
// and it keeps admission O(1).
type quotas struct {
	mu  sync.Mutex
	cfg QuotaConfig
	m   map[string]*bucket
	// now is the clock, swappable in tests.
	now func() time.Time
}

func newQuotas(cfg QuotaConfig) *quotas {
	if cfg.Burst <= 0 {
		cfg.Burst = 1
	}
	return &quotas{cfg: cfg, m: make(map[string]*bucket), now: time.Now}
}

// admit spends one token from tenant's bucket. When the bucket is dry it
// returns false and how long until the next token exists — the value the
// HTTP layer surfaces as Retry-After.
func (q *quotas) admit(tenant string) (ok bool, retryAfter time.Duration) {
	if q == nil || q.cfg.Rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b := q.m[tenant]
	if b == nil {
		b = &bucket{tokens: float64(q.cfg.Burst), last: now}
		q.m[tenant] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * q.cfg.Rate
		if max := float64(q.cfg.Burst); b.tokens > max {
			b.tokens = max
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / q.cfg.Rate
	return false, time.Duration(need * float64(time.Second))
}
