package fleet

import (
	"bytes"
	"fmt"
	"testing"
)

// detSpecs is the worker-count-determinism job mix: every scenario tool
// config, fault-model knobs, sampling, and an app job.
func detSpecs() []JobSpec {
	specs := []JobSpec{
		{Seed: 11, Tool: "none"},
		{Seed: 12, Tool: "ml"},
		{Seed: 13, Tool: "mc"},
		{Seed: 14, Tool: "both"},
		{Seed: 15, Tool: "sample", SampleRate: 8},
		{Seed: 16, Tool: "both", FaultRate: 1e-5},
		{Seed: 17, Tool: "both", FaultRate: 1e-5, Retire: true},
		{Kind: KindApp, App: "gzip", Tool: "safemem", Seed: 18, Scale: 1},
		{Kind: KindApp, App: "gzip", Tool: "sample", Seed: 19, Scale: 1, SampleRate: 10},
	}
	for s := uint64(20); s < 26; s++ {
		specs = append(specs, JobSpec{Seed: s, Tool: "both"})
	}
	return specs
}

// runBatch executes specs on a fresh fleet with the given worker count and
// returns each job's terminal state and result bytes, indexed by spec.
func runBatch(t *testing.T, workers int, chaos *Chaos, specs []JobSpec) ([]State, [][]byte) {
	t.Helper()
	cfg := testConfig()
	cfg.Workers = workers
	cfg.QueueDepth = len(specs) + 1
	cfg.Chaos = chaos
	f := Start(cfg)
	defer f.Close() //nolint:errcheck

	ids := make([]uint64, len(specs))
	for i, s := range specs {
		j, err := f.Submit(s)
		if err != nil {
			t.Fatalf("workers=%d: Submit(%d): %v", workers, i, err)
		}
		ids[i] = j.ID
	}
	states := make([]State, len(specs))
	results := make([][]byte, len(specs))
	for i, id := range ids {
		j := waitTerminal(t, f, id)
		states[i] = j.State
		results[i] = []byte(j.Result)
	}
	return states, results
}

// TestJobDeterminismAcrossWorkerCounts pins the serving layer's core
// promise: a job's result is a function of its spec alone. The same batch
// at 1, 4 and 16 workers must produce byte-identical result payloads.
func TestJobDeterminismAcrossWorkerCounts(t *testing.T) {
	specs := detSpecs()
	baseStates, baseResults := runBatch(t, 1, nil, specs)
	for i, s := range baseStates {
		if s != StateDone {
			t.Fatalf("spec %d: state %q at workers=1, want done", i, s)
		}
	}
	for _, workers := range []int{4, 16} {
		states, results := runBatch(t, workers, nil, specs)
		for i := range specs {
			if states[i] != baseStates[i] {
				t.Errorf("spec %d: state %q at workers=%d, %q at workers=1",
					i, states[i], workers, baseStates[i])
			}
			if !bytes.Equal(results[i], baseResults[i]) {
				t.Errorf("spec %d: result differs at workers=%d vs 1:\n  %s\n  %s",
					i, workers, results[i], baseResults[i])
			}
		}
	}
}

// TestChaosDeterminismAcrossWorkerCounts extends the promise to chaos
// campaigns: injected fates key on the spec hash, so which jobs crash,
// which retry, and every surviving result must match at any worker count.
func TestChaosDeterminismAcrossWorkerCounts(t *testing.T) {
	specs := detSpecs()
	chaos := func() *Chaos { return &Chaos{Seed: 9, PanicEvery: 4, FailEvery: 5} }
	baseStates, baseResults := runBatch(t, 1, chaos(), specs)
	sawCrash := false
	for _, s := range baseStates {
		if s == StateCrashed {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Fatal("chaos drew no crashes — the cross-worker comparison would be vacuous")
	}
	for _, workers := range []int{4, 16} {
		states, results := runBatch(t, workers, chaos(), specs)
		for i := range specs {
			if states[i] != baseStates[i] {
				t.Errorf("spec %d: chaos fate %q at workers=%d, %q at workers=1",
					i, states[i], workers, baseStates[i])
			}
			if !bytes.Equal(results[i], baseResults[i]) {
				t.Errorf("spec %d: result differs under chaos at workers=%d", i, workers)
			}
		}
	}
}

// TestResultBytesStableAcrossRepeatedRuns pins marshalling stability: the
// same spec run twice on the same fleet yields identical bytes (no map
// iteration, timestamps or pointers leak into Result).
func TestResultBytesStableAcrossRepeatedRuns(t *testing.T) {
	cfg := testConfig()
	f := Start(cfg)
	defer f.Close() //nolint:errcheck

	spec := JobSpec{Seed: 77, Tool: "both", FaultRate: 1e-5, Retire: true}
	var first []byte
	for round := 0; round < 3; round++ {
		j0, err := f.Submit(spec)
		if err != nil {
			t.Fatalf("Submit round %d: %v", round, err)
		}
		j := waitTerminal(t, f, j0.ID)
		if j.State != StateDone {
			t.Fatalf("round %d: state %q", round, j.State)
		}
		if round == 0 {
			first = []byte(j.Result)
			continue
		}
		if !bytes.Equal([]byte(j.Result), first) {
			t.Fatalf("round %d result differs:\n%s\n%s", round, j.Result, first)
		}
	}
	if len(first) == 0 {
		t.Fatal("empty result payload")
	}
	// And the payload is versioned by kind, so clients can dispatch.
	if !bytes.Contains(first, []byte(fmt.Sprintf("%q: %q", "kind", KindScenario))) &&
		!bytes.Contains(first, []byte(`"kind":"scenario"`)) {
		t.Errorf("result missing kind marker: %s", first)
	}
}
