package fleet

import (
	"context"
	"fmt"
	"time"
)

// Chaos injects failure into a running fleet so the degradation paths are
// exercised by CI, not just written: worker panics mid-simulation, jobs
// that run artificially slow (tripping deadlines and the watchdog), and
// transient failures (exercising retry budgets). All selection is keyed on
// the job spec's hash — never on worker identity, arrival order or wall
// clock — so a chaos campaign's per-job fate is as reproducible as a clean
// one, and job results stay byte-identical at any worker count.
type Chaos struct {
	// Seed decorrelates chaos selection streams between experiments.
	Seed uint64
	// PanicEvery makes ~1/N of jobs panic mid-run (0 disables).
	PanicEvery int
	// SlowEvery makes ~1/N of jobs stall host-side for SlowFor (0 disables).
	SlowEvery int
	// SlowFor is the injected stall (default 2× a typical job).
	SlowFor time.Duration
	// FailEvery makes ~1/N of jobs fail transiently (0 disables).
	FailEvery int
	// FailAttempts is how many leading attempts of a chosen job fail
	// before it succeeds (default 1 — one retry heals it). Set it at or
	// above the fleet's MaxAttempts to force terminal failures.
	FailAttempts int
}

// chaosAction is the single fate chaos picks for one job attempt.
type chaosAction int

const (
	chaosNone chaosAction = iota
	chaosPanic
	chaosSlow
	chaosFail
)

// mix is splitmix64's finalizer — a cheap, well-distributed hash.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// pick reports whether a 1-in-every draw selects this job for stream salt.
func (c *Chaos) pick(h uint64, salt uint64, every int) bool {
	if every <= 0 {
		return false
	}
	return mix(h^c.Seed^salt)%uint64(every) == 0
}

// plan decides the fate of one job attempt. Priority panic > fail > slow:
// exactly one action fires, so injected fates compose predictably.
func (c *Chaos) plan(h uint64, attempt int) chaosAction {
	if c == nil {
		return chaosNone
	}
	switch {
	case c.pick(h, 0xC4A05, c.PanicEvery):
		return chaosPanic
	case c.pick(h, 0xFA11, c.FailEvery):
		fails := c.FailAttempts
		if fails <= 0 {
			fails = 1
		}
		if attempt <= fails {
			return chaosFail
		}
	case c.pick(h, 0x510_0e, c.SlowEvery):
		return chaosSlow
	}
	return chaosNone
}

// opHook builds the per-op hook the executor threads into the run, or nil
// when this attempt draws no chaos. Trigger indices are small constants so
// every generated scenario (always dozens of ops) reaches them; the panic
// unwinds through Machine.Run untouched, exactly like a real worker bug.
func (c *Chaos) opHook(ctx context.Context, h uint64, attempt int) func(op int) error {
	action := c.plan(h, attempt)
	if action == chaosNone {
		return nil
	}
	slowFor := c.SlowFor
	if slowFor <= 0 {
		slowFor = 500 * time.Millisecond
	}
	return func(op int) error {
		switch action {
		case chaosPanic:
			if op == 2 {
				panic(fmt.Sprintf("chaos: injected worker panic (job hash %#x)", h))
			}
		case chaosFail:
			if op == 1 {
				return fmt.Errorf("chaos: injected failure on attempt %d: %w", attempt, ErrTransient)
			}
		case chaosSlow:
			if op == 1 {
				// Stall in slices so deadline cancellation still lands
				// between ops rather than waiting out the whole sleep.
				deadline := time.Now().Add(slowFor)
				for time.Now().Before(deadline) {
					if err := ctx.Err(); err != nil {
						return err
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
		}
		return nil
	}
}
