package fleet

import (
	"encoding/json"
	"fmt"

	"safemem/internal/apps"
	"safemem/internal/campaign"
)

// JobKind selects what a detection job runs.
const (
	// KindScenario runs one campaign scenario (generated from Seed) under
	// one tool configuration and returns the oracle's verdict — the unit
	// the randomized campaigns are built from.
	KindScenario = "scenario"
	// KindApp runs one evaluation application under one monitoring tool —
	// the safemem-run experience as a service.
	KindApp = "app"
)

// JobSpec is a detection job as submitted by a client: application or
// scenario seed, tool, and the fault/sampling knobs. The spec alone
// determines the result — execution is seed-deterministic — which is what
// lets the fleet promise byte-identical results at any worker count.
type JobSpec struct {
	// Kind is KindScenario (the default when empty) or KindApp.
	Kind string `json:"kind,omitempty"`
	// Tenant attributes the job for per-tenant quota enforcement. Empty is
	// the anonymous tenant (one shared bucket).
	Tenant string `json:"tenant,omitempty"`
	// Seed drives scenario generation (KindScenario) or the workload
	// generator (KindApp).
	Seed uint64 `json:"seed"`
	// Tool names the monitoring configuration. Scenario jobs use the
	// campaign vocabulary (none, ml, mc, both, sample); app jobs use the
	// safemem-run vocabulary (none, safemem, safemem-ml, safemem-mc,
	// sample, purify, pageprot, mmp). Empty means "both" / "safemem".
	Tool string `json:"tool,omitempty"`
	// SampleRate is the sampling rate N for sample-tool jobs (≤0: default).
	SampleRate int `json:"sample_rate,omitempty"`
	// FaultRate, Storm and Retire run the job on flaky DIMMs (the same
	// knobs as safemem-fuzz).
	FaultRate float64 `json:"fault_rate,omitempty"`
	Storm     bool    `json:"storm,omitempty"`
	Retire    bool    `json:"retire,omitempty"`
	// App and its workload shape (KindApp only).
	App   string `json:"app,omitempty"`
	Scale int    `json:"scale,omitempty"`
	Buggy bool   `json:"buggy,omitempty"`
}

// Validate rejects specs the executor could not run.
func (s *JobSpec) Validate() error {
	switch s.Kind {
	case "", KindScenario:
		tool := s.Tool
		if tool == "" {
			tool = "both"
		}
		if _, err := campaign.ParseToolConfig(tool); err != nil {
			return fmt.Errorf("fleet: scenario job: %w", err)
		}
	case KindApp:
		if s.App == "" {
			return fmt.Errorf("fleet: app job needs an app name")
		}
		if _, ok := apps.Get(s.App); !ok {
			return fmt.Errorf("fleet: unknown app %q", s.App)
		}
		if _, err := parseAppTool(s.Tool); err != nil {
			return err
		}
	default:
		return fmt.Errorf("fleet: unknown job kind %q (want %s or %s)", s.Kind, KindScenario, KindApp)
	}
	if s.FaultRate < 0 {
		return fmt.Errorf("fleet: negative fault rate")
	}
	return nil
}

// Hash is a stable fingerprint of the spec (FNV-1a over its canonical
// JSON). Chaos decisions key off it, so whether a given job panics or runs
// slow depends on the job alone — never on worker count or arrival order —
// keeping chaos campaigns as deterministic as clean ones.
func (s *JobSpec) Hash() uint64 {
	b, _ := json.Marshal(s)
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h = (h ^ uint64(c)) * prime
	}
	return h
}

// State is a job's position in the fleet's lifecycle.
type State string

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: on a worker, inside its deadline.
	StateRunning State = "running"
	// StateRetrying: last attempt failed transiently; waiting out backoff.
	StateRetrying State = "retrying"
	// StateDone: terminal success — Result holds the verdict.
	StateDone State = "done"
	// StateCrashed: terminal — a worker panic was isolated to this job and
	// the in-flight machine was discarded (never repooled).
	StateCrashed State = "crashed"
	// StateFailed: terminal — retry budget exhausted or permanent error.
	StateFailed State = "failed"
	// StateTimedOut: terminal — deadline exceeded (cancelled between ops,
	// or abandoned by the watchdog if it ignored cancellation).
	StateTimedOut State = "timed-out"
	// StateCanceled: terminal — killed by the drain deadline before it
	// could finish.
	StateCanceled State = "canceled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateCrashed, StateFailed, StateTimedOut, StateCanceled:
		return true
	}
	return false
}

// Job is one admitted job's full record. Result carries only
// deterministic, simulation-derived bytes; attempts and wall-clock stamps
// are host-side metadata and deliberately live outside it.
type Job struct {
	ID       uint64          `json:"id"`
	Spec     JobSpec         `json:"spec"`
	State    State           `json:"state"`
	Attempts int             `json:"attempts"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`

	SubmittedNS int64 `json:"submitted_ns"`
	StartedNS   int64 `json:"started_ns,omitempty"`
	FinishedNS  int64 `json:"finished_ns,omitempty"`
}

// ScenarioResult is a scenario job's deterministic payload: the oracle's
// verdict plus the run's headline counters. Field order is fixed, so equal
// runs marshal to equal bytes.
type ScenarioResult struct {
	Kind           string               `json:"kind"`
	Seed           uint64               `json:"seed"`
	Tool           string               `json:"tool"`
	Ops            int                  `json:"ops"`
	Cycles         uint64               `json:"cycles"`
	TruePositives  int                  `json:"true_positives"`
	FalsePositives int                  `json:"false_positives"`
	Missed         int                  `json:"missed"`
	ExpectedMisses int                  `json:"expected_misses"`
	SampledMisses  int                  `json:"sampled_misses,omitempty"`
	Violations     []campaign.Violation `json:"violations,omitempty"`
	Reports        []string             `json:"reports,omitempty"`
	Crash          string               `json:"crash,omitempty"`
	HardwareErrors uint64               `json:"hardware_errors,omitempty"`
	PagesRetired   uint64               `json:"pages_retired,omitempty"`
}

// AppResult is an app job's deterministic payload.
type AppResult struct {
	Kind    string   `json:"kind"`
	App     string   `json:"app"`
	Tool    string   `json:"tool"`
	Seed    uint64   `json:"seed"`
	Scale   int      `json:"scale,omitempty"`
	Buggy   bool     `json:"buggy,omitempty"`
	Cycles  uint64   `json:"cycles"`
	Instrs  uint64   `json:"instrs"`
	Mallocs uint64   `json:"mallocs"`
	Frees   uint64   `json:"frees"`
	Reports []string `json:"reports,omitempty"`
	Crash   string   `json:"crash,omitempty"`
}
