package fleet

import (
	"context"
	"net/http"
	"runtime"
	"testing"
	"time"

	"safemem/internal/obsrv"
	"safemem/internal/obsrv/flight"
	"safemem/internal/telemetry"
)

// goroutineCount waits for the goroutine count to settle (background
// HTTP keep-alives and test plumbing wind down asynchronously).
func goroutineCount() int {
	var n int
	for i := 0; i < 10; i++ {
		runtime.GC()
		n = runtime.NumGoroutine()
		time.Sleep(10 * time.Millisecond)
	}
	return n
}

// TestServeSmoke is the end-to-end gate behind `make serve-smoke`: a full
// safemem-serve stack (fleet + observability plane on one listener), a
// mixed job batch — scenario tools including sampling, fault models, app
// jobs — driven over real HTTP by the load generator, then a clean drain.
// Every admitted job must reach a terminal state and the process must not
// leak goroutines.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test exercises a full serving stack")
	}
	before := goroutineCount()

	f := Start(Config{
		Workers:       4,
		QueueDepth:    64,
		JobDeadline:   30 * time.Second,
		WatchdogGrace: time.Second,
		MaxAttempts:   3,
		RetryBase:     time.Millisecond,
		Recorder:      flight.New(1024),
		Registry:      telemetry.NewRegistry("smoke", telemetry.Config{}),
	})
	srv, err := obsrv.Start(obsrv.Config{
		Addr:     "127.0.0.1:0",
		Registry: f.cfg.Registry,
		Recorder: f.cfg.Recorder,
		Extra:    f.Handlers(),
		Ready:    f.ReadyCheck,
	})
	if err != nil {
		t.Fatalf("obsrv.Start: %v", err)
	}

	// The generated mix cycles through every tool path — case 3 of
	// genSpec is the sample tool — so 40 jobs cover all eight branches.
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     srv.URL(),
		Jobs:        40,
		Concurrency: 8,
		Seed:        1,
		Timeout:     2 * time.Minute,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v\n%s", err, rep.String())
	}
	if rep.Admitted == 0 {
		t.Fatal("no jobs admitted")
	}
	if rep.NonTerminal != 0 {
		t.Fatalf("%d jobs never reached a terminal state", rep.NonTerminal)
	}
	if rep.States[StateDone] != rep.Admitted {
		t.Errorf("done = %d of %d admitted (no chaos: all should succeed)\n%s",
			rep.States[StateDone], rep.Admitted, rep.String())
	}

	// The batch covered the sample tool (genSpec case 3 and the sample
	// app job): verify at least one such job ran and recorded it.
	sampled := false
	for _, j := range f.Jobs() {
		if j.Spec.Tool == "sample" {
			sampled = true
			if j.State != StateDone {
				t.Errorf("sample-tool job %d: state %q", j.ID, j.State)
			}
		}
	}
	if !sampled {
		t.Error("job mix never drew the sample tool")
	}

	// Scrape the plane once while loaded — the smoke covers the wiring,
	// the dedicated tests cover semantics.
	for _, ep := range []string{"/metrics", "/healthz", "/readyz", "/buildinfo"} {
		r, gerr := http.Get(srv.URL() + ep)
		if gerr != nil {
			t.Fatalf("GET %s: %v", ep, gerr)
		}
		r.Body.Close()
		if ep != "/healthz" && r.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", ep, r.StatusCode)
		}
	}

	// Drain cleanly: fleet first (finish in-flight), then the listener.
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()

	// Zero leaked goroutines: allow brief settling and a small slack for
	// runtime helpers, then fail loudly with a dump.
	deadline := time.Now().Add(5 * time.Second)
	var after int
	for {
		after = goroutineCount()
		if after <= before+2 || time.Now().After(deadline) {
			break
		}
	}
	if after > before+2 {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d before, %d after drain\n%s", before, after, buf[:n])
	}
}

// TestServeSmokeChaos is the chaos variant: same stack with fault
// injection on and bursty submission. Jobs may crash, retry or time out —
// but every admitted one must still go terminal and the stack must still
// drain without leaking.
func TestServeSmokeChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test exercises a full serving stack")
	}
	f := Start(Config{
		Workers:       4,
		QueueDepth:    16, // small enough that the burst draws 429s
		JobDeadline:   5 * time.Second,
		WatchdogGrace: time.Second,
		MaxAttempts:   3,
		RetryBase:     time.Millisecond,
		Chaos:         &Chaos{Seed: 5, PanicEvery: 6, FailEvery: 8, SlowEvery: 10, SlowFor: 50 * time.Millisecond},
		Recorder:      flight.New(1024),
		Registry:      telemetry.NewRegistry("smoke-chaos", telemetry.Config{}),
	})
	srv, err := obsrv.Start(obsrv.Config{
		Addr:     "127.0.0.1:0",
		Registry: f.cfg.Registry,
		Recorder: f.cfg.Recorder,
		Extra:    f.Handlers(),
		Ready:    f.ReadyCheck,
	})
	if err != nil {
		t.Fatalf("obsrv.Start: %v", err)
	}
	defer srv.Close() //nolint:errcheck

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     srv.URL(),
		Jobs:        60,
		Concurrency: 16,
		Seed:        2,
		Burst:       true,
		Timeout:     2 * time.Minute,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v\n%s", err, rep.String())
	}
	if rep.NonTerminal != 0 {
		t.Fatalf("%d jobs stuck non-terminal under chaos", rep.NonTerminal)
	}
	if rep.States[StateCrashed] == 0 {
		t.Errorf("chaos drew no crashes\n%s", rep.String())
	}
	if rep.States[StateDone] == 0 {
		t.Errorf("no job survived chaos\n%s", rep.String())
	}

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Drain(dctx); err != nil {
		t.Fatalf("Drain under chaos: %v", err)
	}

	// The flight recorder carries the incident trail: admissions, crashes,
	// and the drain bracket.
	for _, kind := range []flight.Kind{flight.KindJobAdmitted, flight.KindJobCrashed,
		flight.KindDrainStart, flight.KindDrainFinish} {
		if f.cfg.Recorder.Count(kind) == 0 {
			t.Errorf("flight recorder has no %q events", kind)
		}
	}
	if rejected := f.met.rejectedQueue.Value(); rejected == 0 {
		t.Log("note: burst never saturated the queue (timing-dependent, not a failure)")
	} else if c := f.cfg.Recorder.Count(flight.KindJobRejected); c == 0 {
		t.Error("queue rejections happened but no job-rejected flight events")
	}
}

// TestGenSpecCoversAllBranches pins the load mix: across enough indices
// every branch of the generator (all tools, fault knobs, the app job)
// appears, so smoke runs genuinely cover the executor surface.
func TestGenSpecCoversAllBranches(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		s := genSpec(1, i, 3)
		key := s.Kind + "/" + s.Tool
		if s.Retire {
			key += "/retire"
		}
		seen[key] = true
		if err := s.Validate(); err != nil {
			t.Fatalf("genSpec(1, %d) invalid: %v", i, err)
		}
	}
	for _, want := range []string{"/none", "/ml", "/mc", "/sample", "/both",
		"/both/retire", "app/safemem"} {
		if !seen[want] {
			t.Errorf("generated mix never drew %s (saw %v)", want, seen)
		}
	}
}
