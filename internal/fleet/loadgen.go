package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// LoadConfig drives a load-generation run against a serving fleet's HTTP
// API — the client half of the chaos suite. It deliberately speaks plain
// HTTP rather than calling Submit directly so the run exercises the same
// surface (status codes, Retry-After, JSON bodies) real clients see.
type LoadConfig struct {
	// BaseURL is the server, e.g. "http://127.0.0.1:9090".
	BaseURL string
	// Jobs is how many jobs to submit in total.
	Jobs int
	// Concurrency is the number of concurrent submitter sessions
	// (default 8).
	Concurrency int
	// Seed varies the generated job mix deterministically.
	Seed uint64
	// Tenants spreads submissions round-robin across this many tenant
	// names (0 or 1: single anonymous tenant).
	Tenants int
	// Burst, when true, submits without pacing or backoff-retry — the
	// queue-pressure pattern that forces 429s. When false, submitters
	// honour Retry-After and re-submit until admitted or the budget below
	// runs out.
	Burst bool
	// RetryBudget bounds re-submissions per job in paced mode (default 50).
	RetryBudget int
	// PollInterval is the terminal-state polling cadence (default 25ms).
	PollInterval time.Duration
	// Timeout bounds the whole run (default 2m).
	Timeout time.Duration
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
}

// LoadReport is what a load run observed. Admitted + Rejected429 +
// Rejected503 + BadRequest + TransportErrors == submission attempts;
// States counts terminal states over admitted jobs.
type LoadReport struct {
	Jobs            int           `json:"jobs"`
	Attempts        int           `json:"attempts"`
	Admitted        int           `json:"admitted"`
	Rejected429     int           `json:"rejected_429"`
	Rejected503     int           `json:"rejected_503"`
	BadRequest      int           `json:"bad_request"`
	TransportErrors int           `json:"transport_errors"`
	States          map[State]int `json:"states"`
	NonTerminal     int           `json:"non_terminal"`
	Elapsed         time.Duration `json:"elapsed_ns"`
}

// String renders the report as the one-screen summary the CLI prints.
func (r *LoadReport) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "load: %d jobs, %d attempts: %d admitted, %d over-capacity (429), %d draining (503), %d bad, %d transport errors\n",
		r.Jobs, r.Attempts, r.Admitted, r.Rejected429, r.Rejected503, r.BadRequest, r.TransportErrors)
	for _, s := range []State{StateDone, StateCrashed, StateFailed, StateTimedOut, StateCanceled} {
		if n := r.States[s]; n > 0 {
			fmt.Fprintf(&b, "  %-10s %d\n", s, n)
		}
	}
	if r.NonTerminal > 0 {
		fmt.Fprintf(&b, "  NON-TERMINAL %d  (jobs stuck — this is a bug)\n", r.NonTerminal)
	}
	fmt.Fprintf(&b, "  elapsed %s\n", r.Elapsed.Round(time.Millisecond))
	return b.String()
}

// genSpec builds the i-th job of a load run: a deterministic mix of
// scenario jobs across tool configs and knobs, with an app job sprinkled
// in — broad enough to touch every executor path.
func genSpec(seed uint64, i int, tenants int) JobSpec {
	h := mix(seed + uint64(i)*0x9e3779b97f4a7c15)
	spec := JobSpec{Seed: h % 100000}
	if tenants > 1 {
		spec.Tenant = "tenant-" + strconv.Itoa(i%tenants)
	}
	switch h % 8 {
	case 0:
		spec.Tool = "none"
	case 1:
		spec.Tool = "ml"
	case 2:
		spec.Tool = "mc"
	case 3:
		spec.Tool = "sample"
		spec.SampleRate = 10
	case 4:
		spec.Tool = "both"
		spec.FaultRate = 1e-5
	case 5:
		spec.Tool = "both"
		spec.FaultRate = 1e-5
		spec.Retire = true
	case 6:
		spec.Kind = KindApp
		spec.App = "gzip"
		spec.Tool = "safemem"
		spec.Scale = 1
	default:
		spec.Tool = "both"
	}
	return spec
}

// RunLoad submits cfg.Jobs jobs across cfg.Concurrency sessions, then
// polls until every admitted job reaches a terminal state (or ctx/Timeout
// expires) and reports what happened.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 50
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 25 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()

	start := time.Now()
	rep := &LoadReport{Jobs: cfg.Jobs, States: make(map[State]int)}
	var mu sync.Mutex
	var admittedIDs []uint64

	// Submission phase: a fixed pool of submitter sessions draining one
	// shared work counter.
	work := make(chan int)
	go func() {
		defer close(work)
		for i := 0; i < cfg.Jobs; i++ {
			select {
			case work <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				spec := genSpec(cfg.Seed, i, cfg.Tenants)
				id, outcome := submitOne(ctx, cfg, spec, rep, &mu)
				if outcome {
					mu.Lock()
					admittedIDs = append(admittedIDs, id)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	// Settlement phase: poll until every admitted job is terminal.
	pending := make(map[uint64]bool, len(admittedIDs))
	for _, id := range admittedIDs {
		pending[id] = true
	}
	rep.Admitted = len(pending)
	for len(pending) > 0 && ctx.Err() == nil {
		for id := range pending {
			j, err := fetchJob(ctx, cfg, id)
			if err != nil {
				continue
			}
			if j.State.Terminal() {
				rep.States[j.State]++
				delete(pending, id)
			}
		}
		if len(pending) > 0 {
			select {
			case <-time.After(cfg.PollInterval):
			case <-ctx.Done():
			}
		}
	}
	rep.NonTerminal = len(pending)
	rep.Elapsed = time.Since(start)
	if rep.NonTerminal > 0 {
		return rep, fmt.Errorf("load: %d admitted jobs never reached a terminal state", rep.NonTerminal)
	}
	return rep, nil
}

// submitOne drives one job's submission, honouring Retry-After unless the
// run is a burst. Returns the job ID and whether it was admitted.
func submitOne(ctx context.Context, cfg LoadConfig, spec JobSpec, rep *LoadReport, mu *sync.Mutex) (uint64, bool) {
	body, _ := json.Marshal(spec)
	for tries := 0; ; tries++ {
		if ctx.Err() != nil {
			return 0, false
		}
		mu.Lock()
		rep.Attempts++
		mu.Unlock()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/jobs", bytes.NewReader(body))
		if err != nil {
			return 0, false
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := cfg.Client.Do(req)
		if err != nil {
			mu.Lock()
			rep.TransportErrors++
			mu.Unlock()
			return 0, false
		}
		status := resp.StatusCode
		retryAfter := resp.Header.Get("Retry-After")
		var job Job
		if status == http.StatusAccepted {
			err = json.NewDecoder(resp.Body).Decode(&job)
		} else {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
		}
		resp.Body.Close()

		switch {
		case status == http.StatusAccepted && err == nil:
			return job.ID, true
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			mu.Lock()
			if status == http.StatusTooManyRequests {
				rep.Rejected429++
			} else {
				rep.Rejected503++
			}
			mu.Unlock()
			if cfg.Burst || tries >= cfg.RetryBudget {
				return 0, false
			}
			// Honour Retry-After, but cap it: test servers hand out
			// second-granularity hints sized for real clients.
			wait := 25 * time.Millisecond
			if secs, perr := strconv.Atoi(retryAfter); perr == nil && secs > 0 {
				wait = time.Duration(secs) * 50 * time.Millisecond
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return 0, false
			}
		default:
			mu.Lock()
			rep.BadRequest++
			mu.Unlock()
			return 0, false
		}
	}
}

// fetchJob reads one job's record back.
func fetchJob(ctx context.Context, cfg LoadConfig, id uint64) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/jobs/%d", cfg.BaseURL, id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
		return nil, fmt.Errorf("load: job %d: HTTP %d", id, resp.StatusCode)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return nil, err
	}
	return &j, nil
}
