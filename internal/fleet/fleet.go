// Package fleet is the fault-tolerant serving layer over the SafeMem
// simulator: a scheduler that admits detection jobs (scenario seeds or
// application runs, with tool and fault knobs), executes them across a
// worker pool of pooled/recycled machines, and survives the failure modes
// a production monitor meets — overload, stuck simulations, crashing
// workers — by degrading instead of dying.
//
// Robustness model, in scheduling order:
//
//   - Admission control: a bounded queue; saturation answers 429 with
//     Retry-After instead of growing without bound. Per-tenant token
//     buckets throttle noisy tenants before they reach the queue.
//   - Deadlines: every job attempt runs under a context deadline, polled
//     between scenario ops. A watchdog gives cancelled jobs a grace
//     period; a simulation that ignores it is abandoned (counted) and the
//     worker moves on — one stuck job never wedges a worker forever.
//   - Retries: transient failures (ErrTransient) get exponential backoff
//     with deterministic jitter, up to a retry budget; exhaustion is a
//     terminal "failed", not an infinite loop.
//   - Panic isolation: a panic anywhere in an attempt is recovered in the
//     attempt goroutine, the job goes terminal "crashed", and the
//     in-flight machine is discarded — never repooled (the campaign and
//     bench executors' deferred drop accounting pins this).
//   - Graceful drain: Drain stops admission, lets queued and running jobs
//     finish, and past its deadline cancels stragglers so every admitted
//     job still reaches a terminal state before the server exits.
//
// Determinism contract: a job's Result bytes are a function of its spec
// alone. Workers, retries, chaos and drains touch only scheduling
// metadata, so equal specs yield byte-identical results at any worker
// count — the campaign's shard-determinism guarantee extended to the
// serving layer (TestJobDeterminismAcrossWorkerCounts).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"safemem/internal/obsrv/flight"
	"safemem/internal/telemetry"
)

// Config parameterises a fleet.
type Config struct {
	// Workers is the worker-goroutine count (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 4×Workers). A full
	// queue rejects with 429 + Retry-After rather than queueing unbounded.
	QueueDepth int
	// JobDeadline is the per-attempt deadline (default 30s).
	JobDeadline time.Duration
	// WatchdogGrace is how long a cancelled attempt gets to notice before
	// the watchdog abandons it (default 2s).
	WatchdogGrace time.Duration
	// MaxAttempts is the retry budget: total attempts per job, terminal
	// "failed" past it (default 3).
	MaxAttempts int
	// RetryBase / RetryMax shape the exponential backoff between attempts
	// (defaults 50ms / 2s). Jitter is deterministic per (job, attempt).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetryAfter is the client back-off hint on queue saturation
	// (default 1s).
	RetryAfter time.Duration
	// DrainTimeout bounds Close's implicit drain (default 30s).
	DrainTimeout time.Duration
	// Quota throttles per-tenant admission (zero Rate disables).
	Quota QuotaConfig
	// Registry receives fleet telemetry (nil: a private registry).
	Registry *telemetry.Registry
	// Recorder receives fleet flight events (nil: flight.Default).
	Recorder *flight.Recorder
	// Chaos, when non-nil, injects panics, stalls and transient failures.
	Chaos *Chaos
	// Exec runs job attempts (nil: the real Execute). Tests stub it.
	Exec Executor
}

// Admission errors.
var (
	// ErrDraining: the fleet is shutting down; nothing new is admitted.
	ErrDraining = errors.New("fleet: draining, not admitting new jobs")
)

// OverloadError is an admission rejection that clients should retry after
// a delay: queue saturation or an exhausted tenant quota.
type OverloadError struct {
	Reason     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("fleet: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// metrics is the fleet's telemetry surface.
type metrics struct {
	queueDepth, running               *telemetry.Gauge
	submitted, admitted               *telemetry.Counter
	rejectedQueue, rejectedQuota      *telemetry.Counter
	rejectedDraining, rejectedInvalid *telemetry.Counter
	done, crashed, failed             *telemetry.Counter
	timedOut, canceled                *telemetry.Counter
	retries, watchdogAbandons         *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry) *metrics {
	c := func(name string) *telemetry.Counter { return reg.Counter("fleet", name) }
	return &metrics{
		queueDepth:       reg.Gauge("fleet", "queue_depth"),
		running:          reg.Gauge("fleet", "running"),
		submitted:        c("jobs_submitted"),
		admitted:         c("jobs_admitted"),
		rejectedQueue:    c("jobs_rejected_queue_full"),
		rejectedQuota:    c("jobs_rejected_quota"),
		rejectedDraining: c("jobs_rejected_draining"),
		rejectedInvalid:  c("jobs_rejected_invalid"),
		done:             c("jobs_done"),
		crashed:          c("jobs_crashed"),
		failed:           c("jobs_failed"),
		timedOut:         c("jobs_timed_out"),
		canceled:         c("jobs_canceled"),
		retries:          c("job_retries"),
		watchdogAbandons: c("watchdog_abandons"),
	}
}

// Fleet is a running scheduler.
type Fleet struct {
	cfg   Config
	rec   *flight.Recorder
	met   *metrics
	quota *quotas
	exec  Executor

	// runCtx parents every job attempt; cancelRun is the drain deadline's
	// hammer.
	runCtx    context.Context
	cancelRun context.CancelFunc

	queue chan *Job
	stopc chan struct{} // closed once, when draining begins
	wg    sync.WaitGroup

	// runningN mirrors into the running gauge; gauges are set-only, so the
	// increment lives in an atomic.
	runningN atomic.Int64

	mu       sync.Mutex
	jobs     map[uint64]*Job
	order    []uint64 // submission order, for stable listings
	nextID   uint64
	draining bool
}

// Start launches the fleet's workers and returns it ready for Submit.
func Start(cfg Config) *Fleet {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.JobDeadline <= 0 {
		cfg.JobDeadline = 30 * time.Second
	}
	if cfg.WatchdogGrace <= 0 {
		cfg.WatchdogGrace = 2 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.Recorder == nil {
		cfg.Recorder = flight.Default
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry("fleet", telemetry.Config{})
	}
	if cfg.Exec == nil {
		cfg.Exec = Execute
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Fleet{
		cfg:       cfg,
		rec:       cfg.Recorder,
		met:       newMetrics(cfg.Registry),
		quota:     newQuotas(cfg.Quota),
		exec:      cfg.Exec,
		runCtx:    ctx,
		cancelRun: cancel,
		queue:     make(chan *Job, cfg.QueueDepth),
		stopc:     make(chan struct{}),
		jobs:      make(map[uint64]*Job),
	}
	for w := 0; w < cfg.Workers; w++ {
		f.wg.Add(1)
		go f.worker()
	}
	return f
}

// Registry returns the registry the fleet publishes telemetry into.
func (f *Fleet) Registry() *telemetry.Registry { return f.cfg.Registry }

// Submit validates and admits one job. On success the job is queued and
// its snapshot returned; otherwise the error is ErrDraining, an
// *OverloadError (queue or quota — answer 429 + Retry-After), or a
// validation error (answer 400).
func (f *Fleet) Submit(spec JobSpec) (Job, error) {
	f.met.submitted.Inc()
	if err := spec.Validate(); err != nil {
		f.met.rejectedInvalid.Inc()
		return Job{}, err
	}
	if ok, retry := f.quota.admit(spec.Tenant); !ok {
		f.met.rejectedQuota.Inc()
		f.rec.Emit(flight.KindJobRejected, "fleet", 0, "tenant quota exhausted: "+spec.Tenant)
		return Job{}, &OverloadError{Reason: "tenant quota exhausted", RetryAfter: retry}
	}

	f.mu.Lock()
	if f.draining {
		f.mu.Unlock()
		f.met.rejectedDraining.Inc()
		f.rec.Emit(flight.KindJobRejected, "fleet", 0, "draining")
		return Job{}, ErrDraining
	}
	f.nextID++
	j := &Job{
		ID:          f.nextID,
		Spec:        spec,
		State:       StateQueued,
		SubmittedNS: time.Now().UnixNano(),
	}
	select {
	case f.queue <- j:
	default:
		f.nextID--
		f.mu.Unlock()
		f.met.rejectedQueue.Inc()
		f.rec.Emit(flight.KindJobRejected, "fleet", 0, "queue saturated")
		return Job{}, &OverloadError{Reason: "queue saturated", RetryAfter: f.cfg.RetryAfter}
	}
	f.jobs[j.ID] = j
	f.order = append(f.order, j.ID)
	snap := *j
	f.mu.Unlock()

	f.met.admitted.Inc()
	f.met.queueDepth.Set(float64(len(f.queue)))
	f.rec.Emit(flight.KindJobAdmitted, "fleet", 0, "",
		flight.F("job", j.ID), flight.F("seed", spec.Seed))
	return snap, nil
}

// Get returns a snapshot of one job.
func (f *Fleet) Get(id uint64) (Job, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Jobs returns snapshots of every admitted job in submission order.
func (f *Fleet) Jobs() []Job {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Job, 0, len(f.order))
	for _, id := range f.order {
		out = append(out, *f.jobs[id])
	}
	return out
}

// Draining reports whether admission has stopped.
func (f *Fleet) Draining() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.draining
}

// ReadyCheck is the /readyz veto: not ready once draining.
func (f *Fleet) ReadyCheck() (bool, string) {
	if f.Draining() {
		return false, "draining"
	}
	return true, ""
}

// Drain gracefully shuts the fleet down: admission stops immediately,
// queued and running jobs run to completion, and once ctx expires the
// stragglers are cancelled (and, if they ignore cancellation, abandoned by
// the watchdog) so every admitted job reaches a terminal state. Returns
// nil once all workers have exited.
func (f *Fleet) Drain(ctx context.Context) error {
	f.mu.Lock()
	already := f.draining
	f.draining = true
	f.mu.Unlock()
	if !already {
		close(f.stopc)
		f.rec.Emit(flight.KindDrainStart, "fleet", 0, "")
	}

	workers := make(chan struct{})
	go func() { f.wg.Wait(); close(workers) }()
	graceful := true
	select {
	case <-workers:
	case <-ctx.Done():
		graceful = false
		f.cancelRun()
		// Cancellation lands between ops; the watchdog bounds how long an
		// attempt that ignores it can hold its worker.
		select {
		case <-workers:
		case <-time.After(f.cfg.WatchdogGrace + 2*time.Second):
			f.rec.Emit(flight.KindDrainFinish, "fleet", 0, "drain timed out: workers still live")
			return fmt.Errorf("fleet: drain timed out with workers still live")
		}
	}
	if !already {
		detail := "graceful"
		if !graceful {
			detail = "deadline: stragglers cancelled"
		}
		f.rec.Emit(flight.KindDrainFinish, "fleet", 0, detail)
	}
	return nil
}

// Close drains with the configured timeout.
func (f *Fleet) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.DrainTimeout)
	defer cancel()
	return f.Drain(ctx)
}

// worker is one scheduling loop: pull, run, repeat — and once draining
// starts, finish whatever is still queued before exiting.
func (f *Fleet) worker() {
	defer f.wg.Done()
	for {
		select {
		case j := <-f.queue:
			f.met.queueDepth.Set(float64(len(f.queue)))
			f.runJob(j)
		case <-f.stopc:
			for {
				select {
				case j := <-f.queue:
					f.met.queueDepth.Set(float64(len(f.queue)))
					f.runJob(j)
				default:
					return
				}
			}
		}
	}
}

// setState transitions a job under the lock, stamping terminal times.
func (f *Fleet) setState(j *Job, s State, attempts int, errText string, result []byte) {
	f.mu.Lock()
	j.State = s
	j.Attempts = attempts
	if errText != "" {
		j.Error = errText
	}
	if result != nil {
		j.Result = result
	}
	now := time.Now().UnixNano()
	if j.StartedNS == 0 && s == StateRunning {
		j.StartedNS = now
	}
	if s.Terminal() {
		j.FinishedNS = now
	}
	f.mu.Unlock()
}

// attemptOutcome classifies one attempt.
type attemptOutcome int

const (
	outDone attemptOutcome = iota
	outCrash
	outCtx // cancelled: per-job deadline or drain hammer (mapped later)
	outTransient
	outPermanent
	outAbandoned // watchdog gave up waiting for cancellation to land
)

type attemptResult struct {
	out    attemptOutcome
	result []byte
	err    error
}

// runJob drives one job through its attempt/retry state machine to a
// terminal state. It never lets a panic or a stuck simulation escape to
// the worker loop.
func (f *Fleet) runJob(j *Job) {
	for attempt := 1; ; attempt++ {
		f.setState(j, StateRunning, attempt, "", nil)
		f.met.running.Set(float64(f.runningN.Add(1)))
		r := f.attempt(j, attempt)
		f.met.running.Set(float64(f.runningN.Add(-1)))

		switch r.out {
		case outDone:
			f.setState(j, StateDone, attempt, "", r.result)
			f.met.done.Inc()
			f.rec.Emit(flight.KindJobDone, "fleet", 0, "",
				flight.F("job", j.ID), flight.F("attempts", uint64(attempt)))
			return
		case outCrash:
			f.setState(j, StateCrashed, attempt, r.err.Error(), nil)
			f.met.crashed.Inc()
			f.rec.Emit(flight.KindJobCrashed, "fleet", 0, r.err.Error(), flight.F("job", j.ID))
			return
		case outCtx, outAbandoned:
			state, ctr, kind := StateTimedOut, f.met.timedOut, flight.KindJobTimedOut
			if f.runCtx.Err() != nil {
				state, ctr, kind = StateCanceled, f.met.canceled, flight.KindJobTimedOut
			}
			detail := "deadline exceeded"
			if state == StateCanceled {
				detail = "cancelled by drain deadline"
			}
			if r.out == outAbandoned {
				detail += " (watchdog abandoned the attempt)"
			}
			f.setState(j, state, attempt, detail, nil)
			ctr.Inc()
			f.rec.Emit(kind, "fleet", 0, detail, flight.F("job", j.ID))
			return
		case outTransient:
			if attempt >= f.cfg.MaxAttempts {
				msg := fmt.Sprintf("retry budget exhausted after %d attempts: %v", attempt, r.err)
				f.setState(j, StateFailed, attempt, msg, nil)
				f.met.failed.Inc()
				f.rec.Emit(flight.KindJobFailed, "fleet", 0, msg, flight.F("job", j.ID))
				return
			}
			f.met.retries.Inc()
			f.rec.Emit(flight.KindJobRetry, "fleet", 0, r.err.Error(),
				flight.F("job", j.ID), flight.F("attempt", uint64(attempt)))
			f.setState(j, StateRetrying, attempt, r.err.Error(), nil)
			if !f.backoff(j.Spec.Hash(), attempt) {
				f.setState(j, StateCanceled, attempt, "cancelled by drain deadline during backoff", nil)
				f.met.canceled.Inc()
				return
			}
		case outPermanent:
			f.setState(j, StateFailed, attempt, r.err.Error(), nil)
			f.met.failed.Inc()
			f.rec.Emit(flight.KindJobFailed, "fleet", 0, r.err.Error(), flight.F("job", j.ID))
			return
		}
	}
}

// backoff sleeps the exponential-backoff-with-jitter delay before the next
// attempt; false means the drain hammer fell mid-sleep.
func (f *Fleet) backoff(h uint64, attempt int) bool {
	d := f.cfg.RetryBase << (attempt - 1)
	if d > f.cfg.RetryMax || d <= 0 {
		d = f.cfg.RetryMax
	}
	// Deterministic jitter in [0.5, 1.0): spreads synchronized retry
	// storms without a wall-clock or shared-RNG dependency.
	frac := 0.5 + 0.5*float64(mix(h^uint64(attempt))%1024)/1024
	d = time.Duration(float64(d) * frac)
	select {
	case <-time.After(d):
		return true
	case <-f.runCtx.Done():
		return false
	}
}

// attempt runs one isolated attempt: its own goroutine (panic isolation),
// its own deadline, and a watchdog that abandons it if cancellation is
// ignored. The attempt goroutine owns any in-flight machine; because the
// executors only repool machines on clean completion, a crash or
// abandonment here discards the machine by construction.
func (f *Fleet) attempt(j *Job, attempt int) attemptResult {
	ctx, cancel := context.WithTimeout(f.runCtx, f.cfg.JobDeadline)
	defer cancel()

	done := make(chan attemptResult, 1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				done <- attemptResult{out: outCrash, err: fmt.Errorf("worker panic: %v", v)}
			}
		}()
		var hook func(op int) error
		if f.cfg.Chaos != nil {
			hook = f.cfg.Chaos.opHook(ctx, j.Spec.Hash(), attempt)
		}
		result, err := f.exec(ctx, j.Spec, hook)
		switch {
		case err == nil:
			done <- attemptResult{out: outDone, result: result}
		case ctxFailure(err):
			done <- attemptResult{out: outCtx, err: err}
		case errors.Is(err, ErrTransient):
			done <- attemptResult{out: outTransient, err: err}
		default:
			done <- attemptResult{out: outPermanent, err: err}
		}
	}()

	select {
	case r := <-done:
		return r
	case <-ctx.Done():
		// The deadline (or drain hammer) fired; give the simulation the
		// watchdog grace to notice the cancelled context between ops.
		select {
		case r := <-done:
			if r.out == outDone {
				// Photo finish: the work completed; results are
				// deterministic, so keep them.
				return r
			}
			return attemptResult{out: outCtx, err: ctx.Err()}
		case <-time.After(f.cfg.WatchdogGrace):
			f.met.watchdogAbandons.Inc()
			return attemptResult{out: outAbandoned, err: ctx.Err()}
		}
	}
}
