package fleet

import (
	"bytes"
	"testing"

	"safemem/internal/bench"
	"safemem/internal/campaign"
	"safemem/internal/snapshot"
)

// withSnapshots runs f with the snapshot fast path enabled, flushing both
// run loops' pools afterwards so tests stay independent.
func withSnapshots(t *testing.T, f func()) {
	t.Helper()
	snapshot.SetEnabled(true)
	defer func() {
		snapshot.SetEnabled(false)
		campaign.FlushSnapshots()
		bench.FlushSnapshots()
	}()
	f()
}

// TestSnapshotJobEquivalenceAcrossWorkerCounts pins the issue's fleet
// contract: the determinism job mix — every tool config, fault knobs,
// sampling, app jobs — produces byte-identical result payloads with the
// snapshot layer on, at 1 and 3 workers, as with it off.
func TestSnapshotJobEquivalenceAcrossWorkerCounts(t *testing.T) {
	specs := detSpecs()
	baseStates, baseResults := runBatch(t, 1, nil, specs)
	for i, s := range baseStates {
		if s != StateDone {
			t.Fatalf("spec %d: state %q with snapshots off, want done", i, s)
		}
	}
	withSnapshots(t, func() {
		for _, workers := range []int{1, 3} {
			states, results := runBatch(t, workers, nil, specs)
			for i := range specs {
				if states[i] != baseStates[i] {
					t.Errorf("spec %d: state %q with snapshots on at workers=%d, %q off",
						i, states[i], workers, baseStates[i])
				}
				if !bytes.Equal(results[i], baseResults[i]) {
					t.Errorf("spec %d: result differs with snapshots on at workers=%d:\n  on:  %s\n  off: %s",
						i, workers, results[i], baseResults[i])
				}
			}
		}
	})
}

// TestSnapshotChaosDropsTaintedRunners runs a chaos fleet — panics and
// transient failures mid-job — with the snapshot layer on, and pins the
// taint rule end to end: fates and results match the snapshot-off chaos
// run, and every panicked attempt dropped its pooled runner (never
// repooled, never re-snapshotted).
func TestSnapshotChaosDropsTaintedRunners(t *testing.T) {
	specs := detSpecs()
	chaos := func() *Chaos { return &Chaos{Seed: 9, PanicEvery: 4, FailEvery: 5} }
	baseStates, baseResults := runBatch(t, 3, chaos(), specs)
	crashed := 0
	for i, s := range baseStates {
		// App-job drops land in the bench store; pin the campaign store
		// against the scenario-job crashes only.
		if s == StateCrashed && specs[i].Kind != KindApp {
			crashed++
		}
	}
	if crashed == 0 {
		t.Fatal("chaos drew no crashes — the taint comparison would be vacuous")
	}
	withSnapshots(t, func() {
		before := campaign.ExecSnapshotStats()
		states, results := runBatch(t, 3, chaos(), specs)
		after := campaign.ExecSnapshotStats()
		for i := range specs {
			if states[i] != baseStates[i] {
				t.Errorf("spec %d: chaos fate %q with snapshots on, %q off", i, states[i], baseStates[i])
			}
			if !bytes.Equal(results[i], baseResults[i]) {
				t.Errorf("spec %d: result differs under chaos with snapshots on", i)
			}
		}
		// Every crashed scenario attempt ran on a pooled runner and must
		// have dropped it. (App-job drops land in the bench store; the mix's
		// crashes are scenario jobs, so pin the campaign store.)
		if drops := after.Drops - before.Drops; drops < uint64(crashed) {
			t.Errorf("campaign snapshot store dropped %d runners, want ≥ %d (one per crashed job)",
				drops, crashed)
		}
		if after.Releases == before.Releases {
			t.Error("no runner was released for the clean jobs")
		}
	})
}
