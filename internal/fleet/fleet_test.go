package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"safemem/internal/obsrv/flight"
	"safemem/internal/telemetry"
)

// testConfig returns a Config sized for fast tests: private recorder and
// registry, millisecond-scale deadlines and backoff.
func testConfig() Config {
	return Config{
		Workers:       2,
		QueueDepth:    8,
		JobDeadline:   2 * time.Second,
		WatchdogGrace: 200 * time.Millisecond,
		MaxAttempts:   3,
		RetryBase:     time.Millisecond,
		RetryMax:      4 * time.Millisecond,
		Recorder:      flight.New(256),
		Registry:      telemetry.NewRegistry("test", telemetry.Config{}),
	}
}

// okExec is a stub executor returning a fixed payload.
func okExec(ctx context.Context, spec JobSpec, hook func(int) error) (json.RawMessage, error) {
	return json.RawMessage(fmt.Sprintf(`{"seed":%d}`, spec.Seed)), nil
}

// waitTerminal polls until job id is terminal or the deadline passes.
func waitTerminal(t *testing.T, f *Fleet, id uint64) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := f.Get(id)
		if !ok {
			t.Fatalf("job %d vanished", id)
		}
		if j.State.Terminal() {
			return j
		}
		time.Sleep(time.Millisecond)
	}
	j, _ := f.Get(id)
	t.Fatalf("job %d stuck in state %q", id, j.State)
	return Job{}
}

func TestSubmitValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Exec = okExec
	f := Start(cfg)
	defer f.Close() //nolint:errcheck

	for _, spec := range []JobSpec{
		{Kind: "warp-drive"},
		{Tool: "quantum"},
		{Kind: KindApp},
		{Kind: KindApp, App: "no-such-app"},
		{Kind: KindApp, App: "gzip", Tool: "quantum"},
		{FaultRate: -1},
	} {
		if _, err := f.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid spec", spec)
		}
	}
	if got := f.met.rejectedInvalid.Value(); got != 6 {
		t.Errorf("rejectedInvalid = %d, want 6", got)
	}
	if got := f.met.admitted.Value(); got != 0 {
		t.Errorf("admitted = %d, want 0", got)
	}
}

func TestJobRunsToDone(t *testing.T) {
	cfg := testConfig()
	cfg.Exec = okExec
	f := Start(cfg)
	defer f.Close() //nolint:errcheck

	j0, err := f.Submit(JobSpec{Seed: 7})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	j := waitTerminal(t, f, j0.ID)
	if j.State != StateDone {
		t.Fatalf("state = %q (err %q), want done", j.State, j.Error)
	}
	if string(j.Result) != `{"seed":7}` {
		t.Errorf("result = %s", j.Result)
	}
	if j.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", j.Attempts)
	}
	if j.SubmittedNS == 0 || j.StartedNS == 0 || j.FinishedNS == 0 {
		t.Errorf("missing timestamps: %+v", j)
	}
}

func TestQueueSaturationRejectsWithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.Exec = func(ctx context.Context, spec JobSpec, hook func(int) error) (json.RawMessage, error) {
		<-release
		return json.RawMessage(`{}`), nil
	}
	f := Start(cfg)
	defer f.Close() //nolint:errcheck
	defer close(release)

	// First job occupies the worker; second fills the queue. With one
	// worker there is a window where the first job is still queued, so
	// admit until two are in and expect rejection within a bounded number
	// of extra submits.
	var ids []uint64
	var overload *OverloadError
	for i := 0; i < 50 && overload == nil; i++ {
		j, err := f.Submit(JobSpec{Seed: uint64(i)})
		switch e := err.(type) {
		case nil:
			ids = append(ids, j.ID)
		case *OverloadError:
			overload = e
		default:
			t.Fatalf("Submit: %v", err)
		}
		if len(ids) < 2 {
			continue
		}
	}
	if overload == nil {
		t.Fatal("queue never saturated")
	}
	if overload.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", overload.RetryAfter)
	}
	if !strings.Contains(overload.Error(), "queue saturated") {
		t.Errorf("error = %q", overload.Error())
	}
	if got := f.met.rejectedQueue.Value(); got == 0 {
		t.Error("rejectedQueue counter not incremented")
	}
}

func TestQuotaRejection(t *testing.T) {
	cfg := testConfig()
	cfg.Exec = okExec
	cfg.Quota = QuotaConfig{Rate: 0.0001, Burst: 2}
	f := Start(cfg)
	defer f.Close() //nolint:errcheck

	for i := 0; i < 2; i++ {
		if _, err := f.Submit(JobSpec{Tenant: "noisy", Seed: uint64(i)}); err != nil {
			t.Fatalf("Submit %d within burst: %v", i, err)
		}
	}
	_, err := f.Submit(JobSpec{Tenant: "noisy", Seed: 9})
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("Submit over quota: %v, want *OverloadError", err)
	}
	if ov.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", ov.RetryAfter)
	}
	// A different tenant has its own bucket.
	if _, err := f.Submit(JobSpec{Tenant: "quiet", Seed: 1}); err != nil {
		t.Errorf("Submit as another tenant: %v", err)
	}
}

func TestTransientRetryHeals(t *testing.T) {
	var calls atomic.Int64
	cfg := testConfig()
	cfg.Exec = func(ctx context.Context, spec JobSpec, hook func(int) error) (json.RawMessage, error) {
		if calls.Add(1) <= 2 {
			return nil, fmt.Errorf("weather: %w", ErrTransient)
		}
		return json.RawMessage(`{"ok":true}`), nil
	}
	f := Start(cfg)
	defer f.Close() //nolint:errcheck

	j0, _ := f.Submit(JobSpec{Seed: 1})
	j := waitTerminal(t, f, j0.ID)
	if j.State != StateDone {
		t.Fatalf("state = %q (err %q), want done after retries", j.State, j.Error)
	}
	if j.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", j.Attempts)
	}
	if got := f.met.retries.Value(); got != 2 {
		t.Errorf("retries counter = %d, want 2", got)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	cfg := testConfig()
	cfg.Exec = func(ctx context.Context, spec JobSpec, hook func(int) error) (json.RawMessage, error) {
		return nil, fmt.Errorf("always: %w", ErrTransient)
	}
	f := Start(cfg)
	defer f.Close() //nolint:errcheck

	j0, _ := f.Submit(JobSpec{Seed: 1})
	j := waitTerminal(t, f, j0.ID)
	if j.State != StateFailed {
		t.Fatalf("state = %q, want failed", j.State)
	}
	if j.Attempts != cfg.MaxAttempts {
		t.Errorf("attempts = %d, want %d", j.Attempts, cfg.MaxAttempts)
	}
	if !strings.Contains(j.Error, "retry budget exhausted") {
		t.Errorf("error = %q", j.Error)
	}
}

func TestPermanentFailureDoesNotRetry(t *testing.T) {
	var calls atomic.Int64
	cfg := testConfig()
	cfg.Exec = func(ctx context.Context, spec JobSpec, hook func(int) error) (json.RawMessage, error) {
		calls.Add(1)
		return nil, errors.New("the scenario is unrunnable")
	}
	f := Start(cfg)
	defer f.Close() //nolint:errcheck

	j0, _ := f.Submit(JobSpec{Seed: 1})
	j := waitTerminal(t, f, j0.ID)
	if j.State != StateFailed {
		t.Fatalf("state = %q, want failed", j.State)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("executor called %d times, want 1 (permanent errors must not burn retries)", n)
	}
}

func TestPanicIsolation(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1 // the one worker must survive the panic
	cfg.Exec = func(ctx context.Context, spec JobSpec, hook func(int) error) (json.RawMessage, error) {
		if spec.Seed == 666 {
			panic("simulated worker bug")
		}
		return json.RawMessage(`{}`), nil
	}
	f := Start(cfg)
	defer f.Close() //nolint:errcheck

	bad, _ := f.Submit(JobSpec{Seed: 666})
	j := waitTerminal(t, f, bad.ID)
	if j.State != StateCrashed {
		t.Fatalf("state = %q, want crashed", j.State)
	}
	if !strings.Contains(j.Error, "simulated worker bug") {
		t.Errorf("error = %q, want the panic value", j.Error)
	}
	// The worker that hosted the panic keeps serving.
	good, _ := f.Submit(JobSpec{Seed: 1})
	if j := waitTerminal(t, f, good.ID); j.State != StateDone {
		t.Fatalf("job after panic: state = %q, want done", j.State)
	}
	if got := f.met.crashed.Value(); got != 1 {
		t.Errorf("crashed counter = %d, want 1", got)
	}
}

func TestDeadlineTimesOutCooperativeJob(t *testing.T) {
	cfg := testConfig()
	cfg.JobDeadline = 20 * time.Millisecond
	cfg.Exec = func(ctx context.Context, spec JobSpec, hook func(int) error) (json.RawMessage, error) {
		<-ctx.Done() // a well-behaved simulation notices cancellation
		return nil, ctx.Err()
	}
	f := Start(cfg)
	defer f.Close() //nolint:errcheck

	j0, _ := f.Submit(JobSpec{Seed: 1})
	j := waitTerminal(t, f, j0.ID)
	if j.State != StateTimedOut {
		t.Fatalf("state = %q, want timed-out", j.State)
	}
	if got := f.met.timedOut.Value(); got != 1 {
		t.Errorf("timedOut counter = %d, want 1", got)
	}
}

func TestWatchdogAbandonsStuckJob(t *testing.T) {
	stuck := make(chan struct{})
	cfg := testConfig()
	cfg.Workers = 1
	cfg.JobDeadline = 10 * time.Millisecond
	cfg.WatchdogGrace = 20 * time.Millisecond
	cfg.Exec = func(ctx context.Context, spec JobSpec, hook func(int) error) (json.RawMessage, error) {
		if spec.Seed == 1 {
			<-stuck // ignores cancellation entirely
		}
		return json.RawMessage(`{}`), nil
	}
	f := Start(cfg)
	defer f.Close() //nolint:errcheck
	defer close(stuck)

	j0, _ := f.Submit(JobSpec{Seed: 1})
	j := waitTerminal(t, f, j0.ID)
	if j.State != StateTimedOut {
		t.Fatalf("state = %q, want timed-out", j.State)
	}
	if !strings.Contains(j.Error, "watchdog") {
		t.Errorf("error = %q, want watchdog abandonment", j.Error)
	}
	if got := f.met.watchdogAbandons.Value(); got != 1 {
		t.Errorf("watchdogAbandons = %d, want 1", got)
	}
	// The worker is free again even though the stuck goroutine still runs.
	good, _ := f.Submit(JobSpec{Seed: 2})
	if j := waitTerminal(t, f, good.ID); j.State != StateDone {
		t.Fatalf("job after abandonment: state = %q, want done", j.State)
	}
}

func TestDrainGraceful(t *testing.T) {
	cfg := testConfig()
	cfg.Exec = func(ctx context.Context, spec JobSpec, hook func(int) error) (json.RawMessage, error) {
		time.Sleep(5 * time.Millisecond)
		return json.RawMessage(`{}`), nil
	}
	f := Start(cfg)

	var ids []uint64
	for i := 0; i < 6; i++ {
		j, err := f.Submit(JobSpec{Seed: uint64(i)})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, j.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, id := range ids {
		j, _ := f.Get(id)
		if j.State != StateDone {
			t.Errorf("job %d after graceful drain: state = %q, want done", id, j.State)
		}
	}
	if _, err := f.Submit(JobSpec{Seed: 99}); err != ErrDraining {
		t.Errorf("Submit after drain: %v, want ErrDraining", err)
	}
	if ok, detail := f.ReadyCheck(); ok || detail != "draining" {
		t.Errorf("ReadyCheck after drain = (%v, %q), want (false, draining)", ok, detail)
	}
	if got := f.cfg.Recorder.Count(flight.KindDrainFinish); got != 1 {
		t.Errorf("drain-finish events = %d, want 1", got)
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 2
	cfg.WatchdogGrace = 50 * time.Millisecond
	cfg.Exec = func(ctx context.Context, spec JobSpec, hook func(int) error) (json.RawMessage, error) {
		<-ctx.Done() // runs until cancelled
		return nil, ctx.Err()
	}
	f := Start(cfg)

	j0, err := f.Submit(JobSpec{Seed: 1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Let the job start, then drain with an already-tight deadline.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	j, _ := f.Get(j0.ID)
	if j.State != StateCanceled {
		t.Errorf("straggler state = %q, want canceled", j.State)
	}
	if !j.State.Terminal() {
		t.Error("straggler left non-terminal after drain")
	}
}

func TestJobsListingOrder(t *testing.T) {
	cfg := testConfig()
	cfg.Exec = okExec
	f := Start(cfg)
	defer f.Close() //nolint:errcheck

	var ids []uint64
	for i := 0; i < 5; i++ {
		j, err := f.Submit(JobSpec{Seed: uint64(i)})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, j.ID)
	}
	jobs := f.Jobs()
	if len(jobs) != 5 {
		t.Fatalf("Jobs() = %d entries, want 5", len(jobs))
	}
	for i, j := range jobs {
		if j.ID != ids[i] {
			t.Errorf("Jobs()[%d].ID = %d, want %d (submission order)", i, j.ID, ids[i])
		}
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	cfg := testConfig()
	cfg.RetryBase = 50 * time.Millisecond
	cfg.RetryMax = 2 * time.Second
	// Jitter must be a pure function of (hash, attempt) and stay in
	// [0.5, 1.0)× the exponential schedule.
	for attempt := 1; attempt <= 5; attempt++ {
		base := cfg.RetryBase << (attempt - 1)
		if base > cfg.RetryMax {
			base = cfg.RetryMax
		}
		frac := 0.5 + 0.5*float64(mix(0xfeed^uint64(attempt))%1024)/1024
		d1 := time.Duration(float64(base) * frac)
		d2 := time.Duration(float64(base) * frac)
		if d1 != d2 {
			t.Fatalf("jitter not deterministic at attempt %d", attempt)
		}
		if d1 < base/2 || d1 > base {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d1, base/2, base)
		}
	}
}
