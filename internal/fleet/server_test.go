package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"safemem/internal/obsrv"
)

// startServed brings up a fleet behind a real obsrv server on an
// ephemeral port — the exact wiring safemem-serve uses.
func startServed(t *testing.T, cfg Config) (*Fleet, *obsrv.Server) {
	t.Helper()
	f := Start(cfg)
	srv, err := obsrv.Start(obsrv.Config{
		Addr:     "127.0.0.1:0",
		Registry: f.cfg.Registry,
		Recorder: f.cfg.Recorder,
		Extra:    f.Handlers(),
		Ready:    f.ReadyCheck,
	})
	if err != nil {
		t.Fatalf("obsrv.Start: %v", err)
	}
	t.Cleanup(func() {
		srv.Close() //nolint:errcheck
		f.Close()   //nolint:errcheck
	})
	return f, srv
}

func postJob(t *testing.T, base string, spec JobSpec) *http.Response {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	return resp
}

func decodeJob(t *testing.T, r io.Reader) Job {
	t.Helper()
	var j Job
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		t.Fatalf("decoding job: %v", err)
	}
	return j
}

func TestHTTPSubmitAndFetch(t *testing.T) {
	cfg := testConfig()
	cfg.Exec = okExec
	f, srv := startServed(t, cfg)

	resp := postJob(t, srv.URL(), JobSpec{Seed: 5})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	job := decodeJob(t, resp.Body)
	resp.Body.Close()
	if job.ID == 0 {
		t.Fatal("admitted job has no ID")
	}
	waitTerminal(t, f, job.ID)

	got, err := http.Get(srv.URL() + "/jobs/" + strconv.FormatUint(job.ID, 10))
	if err != nil {
		t.Fatalf("GET /jobs/{id}: %v", err)
	}
	defer got.Body.Close()
	if got.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/{id} = %d, want 200", got.StatusCode)
	}
	fetched := decodeJob(t, got.Body)
	if fetched.State != StateDone {
		t.Errorf("fetched state = %q, want done", fetched.State)
	}
	if string(fetched.Result) != `{"seed":5}` {
		t.Errorf("fetched result = %s", fetched.Result)
	}
}

func TestHTTPListAndFilter(t *testing.T) {
	cfg := testConfig()
	cfg.Exec = okExec
	f, srv := startServed(t, cfg)

	var last uint64
	for i := 0; i < 3; i++ {
		resp := postJob(t, srv.URL(), JobSpec{Seed: uint64(i)})
		last = decodeJob(t, resp.Body).ID
		resp.Body.Close()
	}
	waitTerminal(t, f, last)

	resp, err := http.Get(srv.URL() + "/jobs?state=done")
	if err != nil {
		t.Fatalf("GET /jobs: %v", err)
	}
	defer resp.Body.Close()
	var listing struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatalf("decoding listing: %v", err)
	}
	if len(listing.Jobs) == 0 {
		t.Fatal("state=done filter returned nothing")
	}
	for _, j := range listing.Jobs {
		if j.State != StateDone {
			t.Errorf("filtered listing contains state %q", j.State)
		}
	}
}

func TestHTTPBadRequests(t *testing.T) {
	cfg := testConfig()
	cfg.Exec = okExec
	_, srv := startServed(t, cfg)

	// Malformed JSON.
	resp, err := http.Post(srv.URL()+"/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}
	// Invalid spec.
	resp = postJob(t, srv.URL(), JobSpec{Kind: "warp-drive"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec = %d, want 400", resp.StatusCode)
	}
	// Unknown job.
	got, err := http.Get(srv.URL() + "/jobs/99999")
	if err != nil {
		t.Fatal(err)
	}
	got.Body.Close()
	if got.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", got.StatusCode)
	}
	// Non-numeric id.
	got, err = http.Get(srv.URL() + "/jobs/banana")
	if err != nil {
		t.Fatal(err)
	}
	got.Body.Close()
	if got.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id = %d, want 400", got.StatusCode)
	}
}

func TestHTTPQueueSaturation429(t *testing.T) {
	release := make(chan struct{})
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.Exec = func(ctx context.Context, spec JobSpec, hook func(int) error) (json.RawMessage, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return json.RawMessage(`{}`), nil
	}
	_, srv := startServed(t, cfg)
	defer close(release)

	saw429 := false
	for i := 0; i < 50 && !saw429; i++ {
		resp := postJob(t, srv.URL(), JobSpec{Seed: uint64(i)})
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			ra := resp.Header.Get("Retry-After")
			if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
				t.Errorf("Retry-After = %q, want integer seconds ≥ 1", ra)
			}
		}
	}
	if !saw429 {
		t.Fatal("saturated queue never answered 429")
	}
}

func TestHTTPQuota429(t *testing.T) {
	cfg := testConfig()
	cfg.Exec = okExec
	cfg.Quota = QuotaConfig{Rate: 0.001, Burst: 1}
	_, srv := startServed(t, cfg)

	resp := postJob(t, srv.URL(), JobSpec{Tenant: "t1", Seed: 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", resp.StatusCode)
	}
	resp = postJob(t, srv.URL(), JobSpec{Tenant: "t1", Seed: 2})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("over-quota 429 missing Retry-After")
	}
}

func TestHTTPDrainingLifecycle(t *testing.T) {
	cfg := testConfig()
	cfg.Exec = okExec
	f, srv := startServed(t, cfg)

	// Ready while serving.
	r, err := http.Get(srv.URL() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/readyz while serving = %d, want 200", r.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Draining: submissions bounce with 503 + Retry-After, readiness off.
	resp := postJob(t, srv.URL(), JobSpec{Seed: 1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 missing Retry-After")
	}
	r, err = http.Get(srv.URL() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", r.StatusCode)
	}
	if !strings.Contains(string(body), "draining") {
		t.Errorf("/readyz body = %q, want draining detail", body)
	}
}

func TestHTTPMetricsExposeFleet(t *testing.T) {
	cfg := testConfig()
	cfg.Exec = okExec
	f, srv := startServed(t, cfg)

	resp := postJob(t, srv.URL(), JobSpec{Seed: 1})
	id := decodeJob(t, resp.Body).ID
	resp.Body.Close()
	waitTerminal(t, f, id)

	m, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	text, _ := io.ReadAll(m.Body)
	for _, want := range []string{"safemem_fleet_jobs_admitted", "safemem_fleet_jobs_done", "safemem_fleet_queue_depth"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
