package fleet

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"
)

// Handlers returns the fleet's job API as a pattern→handler map, shaped
// for obsrv.Config.Extra: one listener carries both the serving API and
// the observability plane (/metrics, /healthz, /readyz, /events).
//
//	POST /jobs      submit a JobSpec; 202 + Job on admission,
//	                400 invalid, 429 + Retry-After on overload/quota,
//	                503 + Retry-After while draining
//	GET  /jobs      list all jobs (?state= filters)
//	GET  /jobs/{id} one job's full record, including its Result
func (f *Fleet) Handlers() map[string]http.Handler {
	return map[string]http.Handler{
		"POST /jobs":     http.HandlerFunc(f.handleSubmit),
		"GET /jobs":      http.HandlerFunc(f.handleList),
		"GET /jobs/{id}": http.HandlerFunc(f.handleGet),
	}
}

// retryAfterSeconds rounds a Retry-After hint up to whole seconds — the
// header's coarsest-common-denominator form — never below 1.
func retryAfterSeconds(d time.Duration) string {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

// writeJSON writes v as a JSON response body. No indentation: a Job's
// Result must cross the wire byte-identical to what the executor stored,
// or the fleet's determinism contract would hold only server-side.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client disconnect mid-body
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// handleSubmit is POST /jobs: admission control made HTTP-visible. The
// status codes are the protocol — clients distinguish "never send this
// again" (400) from "back off and retry" (429/503 + Retry-After).
func (f *Fleet) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad job spec: %v", err)})
		return
	}
	job, err := f.Submit(spec)
	switch e := err.(type) {
	case nil:
		writeJSON(w, http.StatusAccepted, job)
	case *OverloadError:
		w.Header().Set("Retry-After", retryAfterSeconds(e.RetryAfter))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: e.Error()})
	default:
		if err == ErrDraining {
			w.Header().Set("Retry-After", retryAfterSeconds(5*time.Second))
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	}
}

// handleList is GET /jobs: every job in submission order, optionally
// filtered by ?state=.
func (f *Fleet) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := f.Jobs()
	if want := r.URL.Query().Get("state"); want != "" {
		filtered := jobs[:0]
		for _, j := range jobs {
			if string(j.State) == want {
				filtered = append(filtered, j)
			}
		}
		jobs = filtered
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []Job `json:"jobs"`
	}{Jobs: jobs})
}

// handleGet is GET /jobs/{id}.
func (f *Fleet) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job id"})
		return
	}
	job, ok := f.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no job %d", id)})
		return
	}
	writeJSON(w, http.StatusOK, job)
}
