// Package vm models the virtual-memory system of the simulated machine:
// a page table mapping 4 KiB virtual pages to physical frames, per-page
// protection bits (the substrate for the mprotect/page-protection baseline),
// page pinning, and an LRU swapper.
//
// Two properties of the paper's design live here:
//
//   - page protection is *page* granularity, so a page-protection watcher
//     pads and aligns to 4096-byte units — 64× coarser than a cache line,
//     which is the source of the Table 4 space-overhead gap;
//   - ECC protection is attached to *physical* memory, so swapping a watched
//     page breaks the watch (the swap file stores data, not check bits);
//     SafeMem pins watched pages (Section 2.2.2, "Dealing with Page
//     Swapping"), which this package implements and tests demonstrate.
package vm

import (
	"fmt"
	"sort"

	"safemem/internal/ecc"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
)

// encodeCheck computes fresh ECC check bits, as the memory controller does
// when the swap device's DMA writes a page back into DRAM.
func encodeCheck(w uint64) uint8 { return uint8(ecc.Encode(w)) }

// Flusher writes back and invalidates all cached lines of one physical
// frame. The kernel wires the CPU cache in here so paging stays coherent:
// frames are flushed before their contents move to or from the swap
// device and before a frame changes owners.
type Flusher interface {
	FlushFrame(frame physmem.Addr)
}

// PageBytes is the virtual-memory page size.
const PageBytes = 4096

// LinesPerPage is the number of cache lines per page.
const LinesPerPage = PageBytes / physmem.LineBytes

// VAddr is a virtual byte address in the simulated process.
type VAddr uint64

// PageAddr returns the page-aligned base of a.
func (a VAddr) PageAddr() VAddr { return a &^ (PageBytes - 1) }

// PageOffset returns a's offset within its page.
func (a VAddr) PageOffset() uint64 { return uint64(a) & (PageBytes - 1) }

// LineAddr returns the cache-line-aligned base of a.
func (a VAddr) LineAddr() VAddr { return a &^ (physmem.LineBytes - 1) }

// Prot is a page-protection bit set.
type Prot uint8

const (
	// ProtNone forbids all access.
	ProtNone Prot = 0
	// ProtRead allows loads.
	ProtRead Prot = 1 << iota
	// ProtWrite allows stores.
	ProtWrite
	// ProtRW allows both.
	ProtRW = ProtRead | ProtWrite
)

// String renders the protection like mprotect flags.
func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "---"
	case ProtRead:
		return "r--"
	case ProtWrite:
		return "-w-"
	case ProtRW:
		return "rw-"
	default:
		return fmt.Sprintf("Prot(%d)", uint8(p))
	}
}

// FaultKind distinguishes translation failures.
type FaultKind int

const (
	// FaultUnmapped: no mapping exists for the page.
	FaultUnmapped FaultKind = iota
	// FaultProtection: the mapping exists but forbids this access.
	FaultProtection
	// FaultSwappedOut: the page is on the swap device.
	FaultSwappedOut
)

// Fault is a page fault.
type Fault struct {
	Addr  VAddr
	Write bool
	Kind  FaultKind
	Prot  Prot // the page's protection at fault time (FaultProtection only)
}

// Error implements error.
func (f *Fault) Error() string {
	kind := map[FaultKind]string{
		FaultUnmapped:   "unmapped",
		FaultProtection: "protection",
		FaultSwappedOut: "swapped-out",
	}[f.Kind]
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("vm: %s page fault on %s at %#x", kind, op, uint64(f.Addr))
}

// pte is one page-table entry.
type pte struct {
	frame   physmem.Addr // base physical address of the frame
	prot    Prot
	present bool // false when swapped out
	pins    int  // pin count; pinned pages are never swapped
	swapped []uint64
	touch   uint64 // LRU stamp
}

// tlbEntries is the size of the software TLB. Direct-mapped: vpn & tlbMask
// picks the slot. Power of two.
const (
	tlbEntries = 4096
	tlbMask    = tlbEntries - 1
)

// tlbEntry caches one successful translation: vpn → {frame, prot, page}.
// An entry is live iff gen matches the address space's current tlbGen and
// vpn matches the lookup; bumping tlbGen flushes the whole TLB in O(1).
type tlbEntry struct {
	gen   uint64
	vpn   uint64
	frame physmem.Addr
	prot  Prot
	p     *pte
}

// AddressSpace is one simulated process's virtual memory.
type AddressSpace struct {
	clock   *simtime.Clock
	mem     *physmem.Memory
	pages   map[uint64]*pte       // vpn -> pte
	frames  []physmem.Addr        // free frame list
	retired map[physmem.Addr]bool // quarantined frames, never reallocated
	tick    uint64
	flusher Flusher
	tr      *telemetry.Tracer

	// Software TLB: consulted by Translate before the pages map. Purely a
	// host-speed optimisation — it charges no simulated cycles and changes
	// no simulated state, so every counter in Stats is identical with the
	// TLB on or off (pinned by TestTLBEquivalence). Entries are invalidated
	// strictly on every event that can change a translation; see the
	// invalidation matrix in DESIGN.md §4.8.
	tlb       []tlbEntry
	tlbGen    uint64 // current generation; entries with gen != tlbGen are dead
	tlbOn     bool
	tlbHits   uint64 // host-side counters, deliberately outside Stats
	tlbMisses uint64
	tlbFlush  uint64

	// epoch counts translation mutations. It is bumped by exactly the events
	// that invalidate TLB entries (per-page or all), so a PageRef obtained
	// while Epoch() returned E is still valid as long as Epoch() == E. The
	// machine's batch lane uses this to keep page windows open across runs.
	epoch uint64

	// ptePool recycles page-table entries so steady-state map/unmap/restore
	// cycles allocate nothing (pinned by TestSnapshotPathNoAllocs). Reuse is
	// safe: every path that drops a pte (Unmap, RestoreImage) also
	// invalidates the TLB entry and bumps the epoch that guard cached *pte
	// pointers.
	ptePool []*pte

	stats Stats
}

// newPTE returns a zeroed pte, reusing a pooled one when available.
func (as *AddressSpace) newPTE() *pte {
	n := len(as.ptePool)
	if n == 0 {
		return &pte{}
	}
	p := as.ptePool[n-1]
	as.ptePool = as.ptePool[:n-1]
	*p = pte{}
	return p
}

// freePTE returns a dead pte to the pool. Callers must already have
// invalidated any TLB entry or PageRef that could reference it.
func (as *AddressSpace) freePTE(p *pte) { as.ptePool = append(as.ptePool, p) }

// TLBDefault controls whether new address spaces start with the software
// TLB enabled. Equivalence tests flip it off to pin that the TLB is
// invisible to simulated semantics.
var TLBDefault = true

// SetTLB enables or disables the software TLB, flushing it on any change.
func (as *AddressSpace) SetTLB(on bool) {
	as.tlbOn = on
	as.tlbGen++
	as.tlbFlush++
}

// TLBStats returns the host-side TLB counters (hits, misses, flushes).
// These live outside Stats: they describe the simulator, not the simulated
// machine, and must not perturb goldens.
func (as *AddressSpace) TLBStats() (hits, misses, flushes uint64) {
	return as.tlbHits, as.tlbMisses, as.tlbFlush
}

// tlbInvalidate kills any cached translation for vpn.
func (as *AddressSpace) tlbInvalidate(vpn uint64) {
	as.epoch++
	e := &as.tlb[vpn&tlbMask]
	if e.vpn == vpn {
		e.gen = 0 // tlbGen starts at 1 and only grows, so 0 is never live
	}
}

// tlbFlushAll invalidates every entry in O(1) by bumping the generation.
func (as *AddressSpace) tlbFlushAll() {
	as.epoch++
	as.tlbGen++
	as.tlbFlush++
}

// Epoch returns the translation-mutation counter. Any cached PageRef
// obtained at an older epoch must be re-derived.
func (as *AddressSpace) Epoch() uint64 { return as.epoch }

// Stats counts VM activity.
type Stats struct {
	Maps        uint64
	Protects    uint64
	Pins        uint64
	Unpins      uint64
	SwapsOut    uint64
	SwapsIn     uint64
	Translates  uint64
	ProtFaults  uint64
	FramesInUse uint64
	// Migrations counts page moves to a fresh frame (retirements included);
	// FramesRetired counts frames quarantined for good.
	Migrations    uint64
	FramesRetired uint64
}

// New creates an address space backed by mem's frames.
func New(mem *physmem.Memory, clock *simtime.Clock) *AddressSpace {
	nframes := mem.Size() / PageBytes
	frames := make([]physmem.Addr, 0, nframes)
	// Hand out high frames first so physical and virtual addresses differ,
	// catching any accidental identity-mapping assumptions in callers.
	for i := int64(nframes) - 1; i >= 0; i-- {
		frames = append(frames, physmem.Addr(uint64(i)*PageBytes))
	}
	return &AddressSpace{
		clock:   clock,
		mem:     mem,
		pages:   make(map[uint64]*pte),
		frames:  frames,
		retired: make(map[physmem.Addr]bool),
		tlb:     make([]tlbEntry, tlbEntries),
		tlbGen:  1,
		tlbOn:   TLBDefault,
	}
}

// Recycle resets the address space to its freshly-created state without
// reallocating the TLB or the free-frame list backing array. Part of the
// pooled-machine reset path; physical memory is re-zeroed separately by
// the machine (physmem.ZeroTouched).
func (as *AddressSpace) Recycle() {
	nframes := as.mem.Size() / PageBytes
	as.frames = as.frames[:0]
	// Same high-first hand-out order as New, so a recycled machine
	// allocates byte-identical frame sequences to a fresh one.
	for i := int64(nframes) - 1; i >= 0; i-- {
		as.frames = append(as.frames, physmem.Addr(uint64(i)*PageBytes))
	}
	as.pages = make(map[uint64]*pte)
	as.retired = make(map[physmem.Addr]bool)
	as.tick = 0
	as.stats = Stats{}
	as.tlbFlushAll()
	as.tlbHits, as.tlbMisses, as.tlbFlush = 0, 0, 0
}

// SetFlusher wires the CPU cache (or any Flusher) into the paging paths.
func (as *AddressSpace) SetFlusher(f Flusher) { as.flusher = f }

// RegisterTelemetry registers the address space's counters with the
// registry and adopts its tracer for swap spans.
func (as *AddressSpace) RegisterTelemetry(reg *telemetry.Registry) {
	as.tr = reg.Tracer()
	reg.RegisterSource("vm", func(emit func(string, float64)) {
		s := as.Stats()
		emit("maps", float64(s.Maps))
		emit("protects", float64(s.Protects))
		emit("pins", float64(s.Pins))
		emit("unpins", float64(s.Unpins))
		emit("swaps_out", float64(s.SwapsOut))
		emit("swaps_in", float64(s.SwapsIn))
		emit("translates", float64(s.Translates))
		emit("prot_faults", float64(s.ProtFaults))
		emit("frames_in_use", float64(s.FramesInUse))
		emit("migrations", float64(s.Migrations))
		emit("frames_retired", float64(s.FramesRetired))
		// Host-side software-TLB behaviour (not part of simulated Stats).
		emit("tlb_hits", float64(as.tlbHits))
		emit("tlb_misses", float64(as.tlbMisses))
		emit("tlb_flushes", float64(as.tlbFlush))
	})
}

func (as *AddressSpace) flushFrame(frame physmem.Addr) {
	if as.flusher != nil {
		as.flusher.FlushFrame(frame)
	}
}

// Stats returns a copy of the counters.
func (as *AddressSpace) Stats() Stats {
	s := as.stats
	s.FramesInUse = uint64(len(as.pages))
	return s
}

// Map allocates frames for n pages starting at the page-aligned address va.
func (as *AddressSpace) Map(va VAddr, n int, prot Prot) error {
	if va.PageOffset() != 0 {
		return fmt.Errorf("vm: Map at non-page-aligned %#x", uint64(va))
	}
	if n <= 0 {
		return fmt.Errorf("vm: Map of %d pages", n)
	}
	vpn := uint64(va) / PageBytes
	for i := 0; i < n; i++ {
		if _, ok := as.pages[vpn+uint64(i)]; ok {
			return fmt.Errorf("vm: page %#x already mapped", (vpn+uint64(i))*PageBytes)
		}
	}
	if len(as.frames) < n {
		return fmt.Errorf("vm: out of physical frames (%d free, %d needed)", len(as.frames), n)
	}
	for i := 0; i < n; i++ {
		frame := as.frames[len(as.frames)-1]
		as.frames = as.frames[:len(as.frames)-1]
		p := as.newPTE()
		p.frame, p.prot, p.present = frame, prot, true
		as.pages[vpn+uint64(i)] = p
		as.tlbInvalidate(vpn + uint64(i))
		as.clock.Advance(simtime.CostPageTableOp)
		as.stats.Maps++
	}
	return nil
}

// Unmap releases the mapping for n pages at va, returning frames to the
// free list. Pinned pages cannot be unmapped.
func (as *AddressSpace) Unmap(va VAddr, n int) error {
	if va.PageOffset() != 0 {
		return fmt.Errorf("vm: Unmap at non-page-aligned %#x", uint64(va))
	}
	vpn := uint64(va) / PageBytes
	for i := 0; i < n; i++ {
		p, ok := as.pages[vpn+uint64(i)]
		if !ok {
			return fmt.Errorf("vm: page %#x not mapped", (vpn+uint64(i))*PageBytes)
		}
		if p.pins > 0 {
			return fmt.Errorf("vm: page %#x is pinned", (vpn+uint64(i))*PageBytes)
		}
	}
	for i := 0; i < n; i++ {
		p := as.pages[vpn+uint64(i)]
		if p.present {
			// The frame is changing owners: purge its cached lines.
			as.flushFrame(p.frame)
			as.frames = append(as.frames, p.frame)
		}
		delete(as.pages, vpn+uint64(i))
		as.freePTE(p)
		as.tlbInvalidate(vpn + uint64(i))
		as.clock.Advance(simtime.CostPageTableOp)
	}
	return nil
}

// Protect changes the protection of the n pages starting at va.
func (as *AddressSpace) Protect(va VAddr, n int, prot Prot) error {
	if va.PageOffset() != 0 {
		return fmt.Errorf("vm: Protect at non-page-aligned %#x", uint64(va))
	}
	vpn := uint64(va) / PageBytes
	for i := 0; i < n; i++ {
		p, ok := as.pages[vpn+uint64(i)]
		if !ok {
			return fmt.Errorf("vm: page %#x not mapped", (vpn+uint64(i))*PageBytes)
		}
		p.prot = prot
		as.tlbInvalidate(vpn + uint64(i))
		as.clock.Advance(simtime.CostPageTableOp)
		as.stats.Protects++
	}
	return nil
}

// ProtOf returns the protection of the page containing va.
func (as *AddressSpace) ProtOf(va VAddr) (Prot, bool) {
	p, ok := as.pages[uint64(va)/PageBytes]
	if !ok {
		return ProtNone, false
	}
	return p.prot, true
}

// Pin increments the pin count of the page containing va, preventing
// swap-out. WatchMemory pins every page that holds a watched line.
func (as *AddressSpace) Pin(va VAddr) error {
	p, ok := as.pages[uint64(va)/PageBytes]
	if !ok {
		return fmt.Errorf("vm: Pin of unmapped page %#x", uint64(va.PageAddr()))
	}
	if !p.present {
		if err := as.swapIn(uint64(va)/PageBytes, p); err != nil {
			return err
		}
	}
	p.pins++
	as.tlbInvalidate(uint64(va) / PageBytes)
	as.stats.Pins++
	as.clock.Advance(simtime.CostPageTableOp)
	return nil
}

// Unpin decrements the pin count of the page containing va.
func (as *AddressSpace) Unpin(va VAddr) error {
	p, ok := as.pages[uint64(va)/PageBytes]
	if !ok {
		return fmt.Errorf("vm: Unpin of unmapped page %#x", uint64(va.PageAddr()))
	}
	if p.pins == 0 {
		return fmt.Errorf("vm: Unpin of unpinned page %#x", uint64(va.PageAddr()))
	}
	p.pins--
	as.tlbInvalidate(uint64(va) / PageBytes)
	as.stats.Unpins++
	as.clock.Advance(simtime.CostPageTableOp)
	return nil
}

// Pinned reports the pin count of the page containing va.
func (as *AddressSpace) Pinned(va VAddr) int {
	if p, ok := as.pages[uint64(va)/PageBytes]; ok {
		return p.pins
	}
	return 0
}

// Translate maps a virtual address to a physical one, enforcing protection.
// On a swapped-out page it transparently swaps the page back in (demand
// paging) and retries.
func (as *AddressSpace) Translate(va VAddr, write bool) (physmem.Addr, *Fault) {
	as.stats.Translates++
	vpn := uint64(va) / PageBytes
	if as.tlbOn {
		e := &as.tlb[vpn&tlbMask]
		if e.gen == as.tlbGen && e.vpn == vpn {
			// TLB hit: the entry is only ever live for a present page with
			// current prot/frame (strict invalidation), so the fast path is
			// exactly the slow path minus the map lookup and presence check.
			as.tlbHits++
			need := ProtRead
			if write {
				need = ProtWrite
			}
			if e.prot&need == 0 {
				as.stats.ProtFaults++
				as.clock.Advance(simtime.CostPageFault)
				return 0, &Fault{Addr: va, Write: write, Kind: FaultProtection, Prot: e.prot}
			}
			as.tick++
			e.p.touch = as.tick
			return e.frame + physmem.Addr(va.PageOffset()), nil
		}
		as.tlbMisses++
	}
	p, ok := as.pages[vpn]
	if !ok {
		return 0, &Fault{Addr: va, Write: write, Kind: FaultUnmapped}
	}
	if !p.present {
		if err := as.swapIn(vpn, p); err != nil {
			return 0, &Fault{Addr: va, Write: write, Kind: FaultSwappedOut}
		}
	}
	need := ProtRead
	if write {
		need = ProtWrite
	}
	if p.prot&need == 0 {
		as.stats.ProtFaults++
		as.clock.Advance(simtime.CostPageFault)
		return 0, &Fault{Addr: va, Write: write, Kind: FaultProtection, Prot: p.prot}
	}
	if as.tlbOn {
		as.tlb[vpn&tlbMask] = tlbEntry{gen: as.tlbGen, vpn: vpn, frame: p.frame, prot: p.prot, p: p}
	}
	as.tick++
	p.touch = as.tick
	return p.frame + physmem.Addr(va.PageOffset()), nil
}

// PageRef caches one run-length translation for the batched access fast
// lane: every access inside the page window [Base, Base+PageBytes) can
// reuse Frame and Prot without re-walking the page table, with the
// per-access accounting settled in one TouchRun call at batch commit.
// A PageRef must be discarded whenever anything that could change a
// translation may have run — a page fault, kernel deferred work, or any
// clock wake hook — which the machine guarantees by resetting its run
// windows after every slow-path access (see DESIGN.md §4.10).
type PageRef struct {
	as    *AddressSpace
	p     *pte
	Frame physmem.Addr
	Prot  Prot
}

// TranslateRun resolves the page containing va for a batched access run.
// It returns ok=false — charging nothing and raising no fault — when the
// page is unmapped or swapped out, in which case the caller must fall back
// to the per-access slow path (whose Translate performs the demand swap-in
// or delivers the fault with exact single-access semantics). Protection is
// deliberately not checked here: the run may mix loads and stores, so the
// caller checks Prot per access and bails to the slow path on a violation.
func (as *AddressSpace) TranslateRun(va VAddr) (PageRef, bool) {
	vpn := uint64(va) / PageBytes
	if as.tlbOn {
		e := &as.tlb[vpn&tlbMask]
		if e.gen == as.tlbGen && e.vpn == vpn {
			as.tlbHits++
			return PageRef{as: as, p: e.p, Frame: e.frame, Prot: e.prot}, true
		}
		as.tlbMisses++
	}
	p, ok := as.pages[vpn]
	if !ok || !p.present {
		return PageRef{}, false
	}
	if as.tlbOn {
		as.tlb[vpn&tlbMask] = tlbEntry{gen: as.tlbGen, vpn: vpn, frame: p.frame, prot: p.prot, p: p}
	}
	return PageRef{as: as, p: p, Frame: p.frame, Prot: p.prot}, true
}

// TouchRun settles the translation accounting for n batched accesses
// resolved through r: the exact state n sequential hitting Translate calls
// would have left behind (Translates += n, the LRU tick advanced n times,
// the page's touch stamp set to the final tick). Host-side TLB counters
// record the single probe TranslateRun performed, not n synthetic hits —
// they describe what the simulator actually did.
func (r PageRef) TouchRun(n uint64) {
	as := r.as
	as.stats.Translates += n
	as.tick += n
	r.p.touch = as.tick
}

// costSwapPage approximates a 4 KiB disk transfer; the exact figure only
// matters in that swapping must be visibly expensive.
const costSwapPage simtime.Cycles = 200_000

// SwapOutLRU swaps out up to n of the least-recently-used, unpinned,
// present pages, returning how many were evicted. The swap device stores
// *data only* — check bits do not survive, which is why ECC watches break
// across swap unless the page is pinned.
func (as *AddressSpace) SwapOutLRU(n int) int {
	type cand struct {
		vpn   uint64
		touch uint64
	}
	var cands []cand
	for vpn, p := range as.pages {
		if p.present && p.pins == 0 {
			cands = append(cands, cand{vpn, p.touch})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].touch != cands[j].touch {
			return cands[i].touch < cands[j].touch
		}
		return cands[i].vpn < cands[j].vpn
	})
	done := 0
	for _, c := range cands {
		if done >= n {
			break
		}
		as.swapOut(c.vpn, as.pages[c.vpn])
		done++
	}
	return done
}

func (as *AddressSpace) swapOut(vpn uint64, p *pte) {
	sp := as.tr.Begin("vm", "swap-out", telemetry.KV("page", vpn*PageBytes))
	defer sp.End()
	// Write back and invalidate cached lines first: the swap device reads
	// DRAM, and the frame is about to change owners.
	as.flushFrame(p.frame)
	// Read raw data words from the frame (DMA to the swap device).
	words := make([]uint64, PageBytes/physmem.GroupBytes)
	for i := range words {
		words[i], _ = as.mem.ReadGroupRaw(p.frame + physmem.Addr(i*physmem.GroupBytes))
	}
	p.swapped = words
	p.present = false
	as.tlbInvalidate(vpn)
	as.frames = append(as.frames, p.frame)
	as.stats.SwapsOut++
	as.clock.Advance(costSwapPage)
}

func (as *AddressSpace) swapIn(vpn uint64, p *pte) error {
	sp := as.tr.Begin("vm", "swap-in", telemetry.KV("page", vpn*PageBytes))
	defer sp.End()
	if len(as.frames) == 0 {
		// Make room by evicting someone else.
		if as.SwapOutLRU(1) == 0 {
			return fmt.Errorf("vm: no evictable frames for swap-in of page %#x", vpn*PageBytes)
		}
	}
	frame := as.frames[len(as.frames)-1]
	as.frames = as.frames[:len(as.frames)-1]
	// Drop any stale cached lines left by the frame's previous owner.
	as.flushFrame(frame)
	// Write data back through the normal (ECC-enabled) path: every group
	// gets *freshly encoded* check bits, so a scramble that was swapped out
	// comes back self-consistent — the watch is silently lost. This is the
	// hazard pinning exists to prevent.
	for i, w := range p.swapped {
		as.mem.WriteGroupRaw(frame+physmem.Addr(i*physmem.GroupBytes), w, encodeCheck(w))
	}
	p.swapped = nil
	p.frame = frame
	p.present = true
	as.tlbInvalidate(vpn)
	as.stats.SwapsIn++
	as.clock.Advance(costSwapPage)
	return nil
}

// Image is a checkpoint of an address space's simulated state: page table,
// free-frame list, retired set, LRU tick and counters. Captured with
// CaptureImage, restored with RestoreImage. The software TLB and its
// host-side counters are not part of the image — they are invisible to
// simulated semantics and a restore simply flushes them.
type Image struct {
	as      *AddressSpace
	pages   map[uint64]pte
	frames  []physmem.Addr
	retired []physmem.Addr
	tick    uint64
	stats   Stats
}

// CaptureImage checkpoints the address space.
func (as *AddressSpace) CaptureImage() *Image {
	img := &Image{
		as:     as,
		pages:  make(map[uint64]pte, len(as.pages)),
		frames: append([]physmem.Addr(nil), as.frames...),
		tick:   as.tick,
		stats:  as.stats,
	}
	for vpn, p := range as.pages {
		cp := *p
		cp.swapped = append([]uint64(nil), p.swapped...)
		img.pages[vpn] = cp
	}
	for f := range as.retired {
		img.retired = append(img.retired, f)
	}
	return img
}

// RestoreImage puts the address space back into the captured state and
// flushes the TLB. Page contents live in physmem and are restored
// separately (physmem.RestoreImage); this restores the translations. For
// the empty page tables the snapshot layer captures, the restore allocates
// nothing and costs O(pages mapped since capture).
func (as *AddressSpace) RestoreImage(img *Image) {
	if img.as != as {
		panic("vm: RestoreImage with an image captured from a different address space")
	}
	for _, p := range as.pages {
		as.freePTE(p)
	}
	clear(as.pages)
	for vpn, p := range img.pages {
		np := as.newPTE()
		*np = p
		np.swapped = append([]uint64(nil), p.swapped...)
		as.pages[vpn] = np
	}
	as.frames = as.frames[:len(img.frames)]
	copy(as.frames, img.frames)
	clear(as.retired)
	for _, f := range img.retired {
		as.retired[f] = true
	}
	as.tick = img.tick
	as.stats = img.stats
	as.tlbFlushAll()
}

// Present reports whether the page containing va is resident.
func (as *AddressSpace) Present(va VAddr) bool {
	p, ok := as.pages[uint64(va)/PageBytes]
	return ok && p.present
}

// FrameOf returns the physical frame of the page containing va, for tests.
func (as *AddressSpace) FrameOf(va VAddr) (physmem.Addr, bool) {
	p, ok := as.pages[uint64(va)/PageBytes]
	if !ok || !p.present {
		return 0, false
	}
	return p.frame, true
}

// FreeFrames returns the number of unallocated physical frames.
func (as *AddressSpace) FreeFrames() int { return len(as.frames) }
