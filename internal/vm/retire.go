package vm

import (
	"fmt"

	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
)

// Page migration and frame retirement — the VM half of hardware-fault
// survivability. When a physical frame develops a sticky DRAM fault (a weak
// or stuck-at cell keeps tripping ECC), the kernel migrates the page to a
// healthy frame and quarantines the bad one so the allocator never hands it
// out again. Unlike swap, migration copies data *and* check bits verbatim
// (a DRAM-to-DRAM move), so SafeMem's scrambled watch lines survive the
// move — the kernel only has to re-point its physical-line bookkeeping.

// costMigratePage approximates a 4 KiB DRAM-to-DRAM copy (64 line reads and
// writes), far cheaper than the disk transfer swap pays.
const costMigratePage simtime.Cycles = 24_000

// MigratePage moves the page containing va onto a fresh physical frame,
// copying raw data and check bits verbatim, and returns the old and new
// frame base addresses. Pins, protection and LRU state carry over. The old
// frame goes back on the free list; use RetirePage when it must not.
func (as *AddressSpace) MigratePage(va VAddr) (old, fresh physmem.Addr, err error) {
	old, fresh, err = as.migrate(va)
	if err == nil {
		as.frames = append(as.frames, old)
	}
	return old, fresh, err
}

// RetirePage migrates the page containing va off its current frame and
// quarantines that frame permanently: it never returns to the free list.
// This is the kernel's response to a frame whose error history crossed the
// retirement threshold.
func (as *AddressSpace) RetirePage(va VAddr) (retired, fresh physmem.Addr, err error) {
	retired, fresh, err = as.migrate(va)
	if err == nil {
		as.retired[retired] = true
		as.stats.FramesRetired++
	}
	return retired, fresh, err
}

// migrate does the copy and remap shared by MigratePage and RetirePage.
func (as *AddressSpace) migrate(va VAddr) (old, fresh physmem.Addr, err error) {
	vpn := uint64(va) / PageBytes
	p, ok := as.pages[vpn]
	if !ok {
		return 0, 0, fmt.Errorf("vm: migrate of unmapped page %#x", uint64(va.PageAddr()))
	}
	if !p.present {
		// A swapped-out page has no frame to leave; bring it in first so the
		// caller still ends up with the page on a fresh frame.
		if err := as.swapIn(vpn, p); err != nil {
			return 0, 0, err
		}
	}
	if len(as.frames) == 0 {
		if as.SwapOutLRU(1) == 0 {
			return 0, 0, fmt.Errorf("vm: no free frame to migrate page %#x", uint64(va.PageAddr()))
		}
	}
	sp := as.tr.Begin("vm", "migrate", telemetry.KV("page", vpn*PageBytes))
	defer sp.End()
	old = p.frame
	fresh = as.frames[len(as.frames)-1]
	as.frames = as.frames[:len(as.frames)-1]
	// Write back the page's cached lines so the copy sees current data, and
	// purge stale lines a previous owner left under the fresh frame.
	as.flushFrame(old)
	as.flushFrame(fresh)
	// Raw copy: data and check bits move verbatim, so scrambled watch lines
	// stay scrambled and latent errors travel with the data (the kernel
	// repairs before it retires).
	for i := 0; i < PageBytes/physmem.GroupBytes; i++ {
		off := physmem.Addr(i * physmem.GroupBytes)
		data, check := as.mem.ReadGroupRaw(old + off)
		as.mem.WriteGroupRaw(fresh+off, data, check)
	}
	p.frame = fresh
	as.tlbInvalidate(vpn)
	as.stats.Migrations++
	as.clock.Advance(costMigratePage)
	return old, fresh, nil
}

// VPageOf returns the virtual page base currently mapped onto the frame at
// base address f, if any. The kernel uses it to go from a faulting physical
// frame back to the page it must retire. O(pages) — fine at simulator scale
// and only run on the (rare) retirement path.
func (as *AddressSpace) VPageOf(f physmem.Addr) (VAddr, bool) {
	for vpn, p := range as.pages {
		if p.present && p.frame == f {
			return VAddr(vpn * PageBytes), true
		}
	}
	return 0, false
}

// Retired reports whether the frame at base address f has been quarantined.
func (as *AddressSpace) Retired(f physmem.Addr) bool { return as.retired[f] }

// RetiredFrames returns how many frames are quarantined.
func (as *AddressSpace) RetiredFrames() int { return len(as.retired) }
