package vm

import (
	"testing"

	"safemem/internal/ecc"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
)

func newAS(frames int) (*AddressSpace, *physmem.Memory) {
	clock := &simtime.Clock{}
	mem := physmem.MustNew(uint64(frames) * PageBytes)
	return New(mem, clock), mem
}

func TestMapTranslate(t *testing.T) {
	as, _ := newAS(4)
	if err := as.Map(0x10000, 2, ProtRW); err != nil {
		t.Fatal(err)
	}
	pa, fault := as.Translate(0x10008, false)
	if fault != nil {
		t.Fatal(fault)
	}
	frame, _ := as.FrameOf(0x10000)
	if pa != frame+8 {
		t.Fatalf("pa = %#x, want frame+8 = %#x", pa, frame+8)
	}
	// Second page translates into a different frame.
	pa2, fault := as.Translate(0x10000+PageBytes, true)
	if fault != nil {
		t.Fatal(fault)
	}
	if pa2.LineAddr() == pa.LineAddr() {
		t.Fatal("distinct pages share a frame")
	}
}

func TestMapValidation(t *testing.T) {
	as, _ := newAS(2)
	if err := as.Map(123, 1, ProtRW); err == nil {
		t.Error("unaligned Map accepted")
	}
	if err := as.Map(0x1000, 0, ProtRW); err == nil {
		t.Error("zero-page Map accepted")
	}
	if err := as.Map(0x1000, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x1000, 1, ProtRW); err == nil {
		t.Error("double Map accepted")
	}
	if err := as.Map(0x10000, 5, ProtRW); err == nil {
		t.Error("Map beyond physical frames accepted")
	}
}

func TestUnmappedFault(t *testing.T) {
	as, _ := newAS(2)
	_, fault := as.Translate(0xdead000, false)
	if fault == nil || fault.Kind != FaultUnmapped {
		t.Fatalf("fault = %+v, want unmapped", fault)
	}
	if fault.Error() == "" {
		t.Fatal("empty fault message")
	}
}

func TestProtectionFaults(t *testing.T) {
	as, _ := newAS(2)
	if err := as.Map(0x2000, 1, ProtRead); err != nil {
		t.Fatal(err)
	}
	if _, fault := as.Translate(0x2000, false); fault != nil {
		t.Fatalf("read under ProtRead faulted: %v", fault)
	}
	_, fault := as.Translate(0x2000, true)
	if fault == nil || fault.Kind != FaultProtection || !fault.Write {
		t.Fatalf("write under ProtRead: fault = %+v", fault)
	}
	if err := as.Protect(0x2000, 1, ProtNone); err != nil {
		t.Fatal(err)
	}
	_, fault = as.Translate(0x2000, false)
	if fault == nil || fault.Kind != FaultProtection {
		t.Fatalf("read under ProtNone: fault = %+v", fault)
	}
	if err := as.Protect(0x2000, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	if _, fault := as.Translate(0x2000, true); fault != nil {
		t.Fatalf("write under ProtRW faulted: %v", fault)
	}
	if as.Stats().ProtFaults != 2 {
		t.Fatalf("ProtFaults = %d, want 2", as.Stats().ProtFaults)
	}
}

func TestUnmapReturnsFrames(t *testing.T) {
	as, _ := newAS(3)
	free := as.FreeFrames()
	if err := as.Map(0, 2, ProtRW); err != nil {
		t.Fatal(err)
	}
	if as.FreeFrames() != free-2 {
		t.Fatal("frames not consumed")
	}
	if err := as.Unmap(0, 2); err != nil {
		t.Fatal(err)
	}
	if as.FreeFrames() != free {
		t.Fatal("frames not returned")
	}
	if _, fault := as.Translate(0, false); fault == nil {
		t.Fatal("translate after unmap succeeded")
	}
}

func TestPinBlocksSwapAndUnmap(t *testing.T) {
	as, _ := newAS(4)
	if err := as.Map(0x4000, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Pin(0x4000 + 100); err != nil {
		t.Fatal(err)
	}
	if as.Pinned(0x4000) != 1 {
		t.Fatal("pin count wrong")
	}
	if n := as.SwapOutLRU(10); n != 0 {
		t.Fatalf("swapped out %d pinned pages", n)
	}
	if err := as.Unmap(0x4000, 1); err == nil {
		t.Fatal("unmapped a pinned page")
	}
	if err := as.Unpin(0x4000); err != nil {
		t.Fatal(err)
	}
	if err := as.Unpin(0x4000); err == nil {
		t.Fatal("unpin below zero accepted")
	}
	if n := as.SwapOutLRU(10); n != 1 {
		t.Fatalf("swap after unpin evicted %d, want 1", n)
	}
}

func TestSwapRoundTripPreservesData(t *testing.T) {
	as, mem := newAS(4)
	if err := as.Map(0x8000, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	frame, _ := as.FrameOf(0x8000)
	mem.WriteGroupRaw(frame, 0x1122334455667788, uint8(ecc.Encode(0x1122334455667788)))

	if n := as.SwapOutLRU(1); n != 1 {
		t.Fatal("swap-out failed")
	}
	if as.Present(0x8000) {
		t.Fatal("page still present")
	}
	// Demand paging: translation swaps the page back in.
	pa, fault := as.Translate(0x8000, false)
	if fault != nil {
		t.Fatal(fault)
	}
	d, _ := mem.ReadGroupRaw(pa.GroupAddr())
	if d != 0x1122334455667788 {
		t.Fatalf("data after swap round trip = %#x", d)
	}
	st := as.Stats()
	if st.SwapsOut != 1 || st.SwapsIn != 1 {
		t.Fatalf("swap stats = %+v", st)
	}
}

func TestSwapDestroysECCWatch(t *testing.T) {
	// The Section 2.2.2 hazard: a scrambled (watched) group swapped out and
	// back comes back with *fresh, matching* check bits — the watch is
	// silently lost and the memory now holds scrambled garbage.
	as, mem := newAS(4)
	if err := as.Map(0x8000, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	frame, _ := as.FrameOf(0x8000)
	orig := uint64(0xabcdef)
	// Simulate WatchMemory: data scrambled, check bits still for orig.
	mem.WriteGroupRaw(frame, ecc.Scramble(orig), uint8(ecc.Encode(orig)))

	as.SwapOutLRU(1)
	pa, fault := as.Translate(0x8000, false)
	if fault != nil {
		t.Fatal(fault)
	}
	d, c := mem.ReadGroupRaw(pa.GroupAddr())
	if _, _, res := ecc.Decode(d, ecc.Check(c)); res != ecc.OK {
		t.Fatalf("swapped-in group decodes as %v; expected the watch to be silently lost (OK)", res)
	}
	if d != ecc.Scramble(orig) {
		t.Fatalf("data = %#x, expected scrambled garbage %#x", d, ecc.Scramble(orig))
	}
}

func TestSwapInEvictsWhenFull(t *testing.T) {
	as, _ := newAS(2)
	if err := as.Map(0x0, 2, ProtRW); err != nil {
		t.Fatal(err)
	}
	as.Translate(0x0, false)       // touch page 0
	as.Translate(PageBytes, false) // touch page 1 (more recent)
	if n := as.SwapOutLRU(1); n != 1 {
		t.Fatal("initial eviction failed")
	}
	if as.Present(0) {
		t.Fatal("LRU page (0) should have been evicted")
	}
	// Consume the freed frame so the swap-in below finds none available.
	if err := as.Map(0x100000, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	if as.FreeFrames() != 0 {
		t.Fatalf("free frames = %d, want 0", as.FreeFrames())
	}
	// Bringing page 0 back requires evicting another page.
	if _, fault := as.Translate(0x0, false); fault != nil {
		t.Fatal(fault)
	}
	if !as.Present(0) {
		t.Fatal("page 0 not resident after demand swap-in")
	}
	if as.Present(PageBytes) && as.Present(0x100000) {
		t.Fatal("no page was evicted to make room")
	}
}

func TestPinSwappedOutPageSwapsItIn(t *testing.T) {
	as, _ := newAS(4)
	if err := as.Map(0x0, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	as.SwapOutLRU(1)
	if err := as.Pin(0x0); err != nil {
		t.Fatal(err)
	}
	if !as.Present(0x0) {
		t.Fatal("pinned page not resident")
	}
}

func TestVAddrHelpers(t *testing.T) {
	a := VAddr(PageBytes*2 + 100)
	if a.PageAddr() != PageBytes*2 {
		t.Errorf("PageAddr = %#x", uint64(a.PageAddr()))
	}
	if a.PageOffset() != 100 {
		t.Errorf("PageOffset = %d", a.PageOffset())
	}
	if a.LineAddr() != PageBytes*2+64 {
		t.Errorf("LineAddr = %#x", uint64(a.LineAddr()))
	}
}

func TestProtString(t *testing.T) {
	if ProtRW.String() != "rw-" || ProtNone.String() != "---" || ProtRead.String() != "r--" {
		t.Fatal("Prot.String mismatch")
	}
}

func BenchmarkTranslate(b *testing.B) {
	clock := &simtime.Clock{}
	as := New(physmem.MustNew(1<<20), clock)
	if err := as.Map(0x10000, 16, ProtRW); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as.Translate(VAddr(0x10000+i%(16*PageBytes)), i%2 == 0)
	}
}

// TestTranslateRun pins the fast lane's translation primitive against
// Translate: identical frame and protection for mapped resident pages,
// ok=false — with no fault raised and no demand swap-in performed — for
// unmapped and swapped-out pages, and TouchRun accounting exactly equal to
// n sequential hitting Translates.
func TestTranslateRun(t *testing.T) {
	as, _ := newAS(8)
	if err := as.Map(0x10000, 2, ProtRW); err != nil {
		t.Fatal(err)
	}
	pr, ok := as.TranslateRun(0x10008)
	if !ok {
		t.Fatal("mapped resident page did not resolve")
	}
	pa, fault := as.Translate(0x10008, false)
	if fault != nil {
		t.Fatal(fault)
	}
	if pr.Frame+8 != pa {
		t.Fatalf("PageRef frame %#x+8 disagrees with Translate %#x", pr.Frame, pa)
	}
	if pr.Prot != ProtRW {
		t.Fatalf("PageRef prot = %v, want RW", pr.Prot)
	}

	if _, ok := as.TranslateRun(0x90000); ok {
		t.Error("unmapped page resolved")
	}

	// Protection is deliberately not checked here — a read-only page still
	// resolves; the caller bails per access direction.
	if err := as.Protect(0x11000, 1, ProtRead); err != nil {
		t.Fatal(err)
	}
	if pr2, ok := as.TranslateRun(0x11000); !ok || pr2.Prot != ProtRead {
		t.Errorf("read-only page: ok=%v prot=%v, want resolved with ProtRead", ok, pr2.Prot)
	}

	// A swapped-out page must not resolve, and probing it must not swap it
	// back in (that is the slow path's job, with its faults and charges).
	if as.SwapOutLRU(2) != 2 {
		t.Fatal("SwapOutLRU swapped nothing")
	}
	swapIns := as.Stats().SwapsIn
	if _, ok := as.TranslateRun(0x10000); ok {
		t.Error("swapped-out page resolved")
	}
	if as.Stats().SwapsIn != swapIns {
		t.Error("TranslateRun performed a demand swap-in")
	}

	// TouchRun settles accounting exactly like n sequential Translates.
	if _, fault := as.Translate(0x10000, false); fault != nil {
		t.Fatal(fault)
	}
	before := as.Stats().Translates
	pr3, ok := as.TranslateRun(0x10000)
	if !ok {
		t.Fatal("swapped-in page did not resolve")
	}
	pr3.TouchRun(5)
	if got := as.Stats().Translates; got != before+5 {
		t.Fatalf("TouchRun(5) moved Translates %d→%d, want +5", before, got)
	}
}
