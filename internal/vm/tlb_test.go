package vm

import (
	"testing"

	"safemem/internal/physmem"
	"safemem/internal/simtime"
)

func newTLBSpace(t *testing.T) *AddressSpace {
	t.Helper()
	mem := physmem.MustNew(1 << 20)
	as := New(mem, &simtime.Clock{})
	if !as.tlbOn {
		t.Fatal("TLB not on by default")
	}
	return as
}

func TestTLBHitReturnsSameFrame(t *testing.T) {
	as := newTLBSpace(t)
	if err := as.Map(0x10000, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	pa1, f := as.Translate(0x10008, false)
	if f != nil {
		t.Fatal(f)
	}
	pa2, f := as.Translate(0x10010, true)
	if f != nil {
		t.Fatal(f)
	}
	if pa2 != pa1+8 {
		t.Fatalf("TLB hit gave %#x, want %#x", uint64(pa2), uint64(pa1+8))
	}
	hits, misses, _ := as.TLBStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1, 1", hits, misses)
	}
}

func TestTLBInvalidateOnProtect(t *testing.T) {
	as := newTLBSpace(t)
	if err := as.Map(0x10000, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	if _, f := as.Translate(0x10000, true); f != nil {
		t.Fatal(f)
	}
	if err := as.Protect(0x10000, 1, ProtRead); err != nil {
		t.Fatal(err)
	}
	// The cached rw entry must be gone: a write now prot-faults.
	if _, f := as.Translate(0x10000, true); f == nil || f.Kind != FaultProtection || f.Prot != ProtRead {
		t.Fatalf("stale TLB entry survived Protect: fault=%v", f)
	}
	// And a read still works.
	if _, f := as.Translate(0x10000, false); f != nil {
		t.Fatal(f)
	}
}

func TestTLBInvalidateOnUnmap(t *testing.T) {
	as := newTLBSpace(t)
	if err := as.Map(0x10000, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	if _, f := as.Translate(0x10000, false); f != nil {
		t.Fatal(f)
	}
	if err := as.Unmap(0x10000, 1); err != nil {
		t.Fatal(err)
	}
	if _, f := as.Translate(0x10000, false); f == nil || f.Kind != FaultUnmapped {
		t.Fatalf("stale TLB entry survived Unmap: fault=%v", f)
	}
}

func TestTLBInvalidateOnSwapAndMigrate(t *testing.T) {
	as := newTLBSpace(t)
	if err := as.Map(0x10000, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	if _, f := as.Translate(0x10000, false); f != nil {
		t.Fatal(f)
	}
	oldFrame, _ := as.FrameOf(0x10000)
	if as.SwapOutLRU(1) != 1 {
		t.Fatal("nothing swapped out")
	}
	// The translate must go through swap-in, not the stale entry.
	pa, f := as.Translate(0x10000, false)
	if f != nil {
		t.Fatal(f)
	}
	frame, _ := as.FrameOf(0x10000)
	if pa != frame {
		t.Fatalf("post-swap translate = %#x, frame = %#x", uint64(pa), uint64(frame))
	}
	if s := as.Stats(); s.SwapsIn != 1 {
		t.Fatalf("SwapsIn = %d, want 1 (stale TLB hit skipped demand paging?)", s.SwapsIn)
	}
	_ = oldFrame

	// Frame migration must likewise kill the cached frame.
	if _, f := as.Translate(0x10000, false); f != nil { // refill TLB
		t.Fatal(f)
	}
	_, fresh, err := as.MigratePage(0x10000)
	if err != nil {
		t.Fatal(err)
	}
	pa, f = as.Translate(0x10018, false)
	if f != nil {
		t.Fatal(f)
	}
	if pa != fresh+0x18 {
		t.Fatalf("post-migrate translate = %#x, want %#x", uint64(pa), uint64(fresh+0x18))
	}
}

func TestTLBDisable(t *testing.T) {
	as := newTLBSpace(t)
	if err := as.Map(0x10000, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	as.SetTLB(false)
	for i := 0; i < 4; i++ {
		if _, f := as.Translate(0x10000, false); f != nil {
			t.Fatal(f)
		}
	}
	hits, misses, _ := as.TLBStats()
	if hits != 0 || misses != 0 {
		t.Fatalf("disabled TLB counted hits=%d misses=%d", hits, misses)
	}
}

// TestTLBTransparent runs the same operation sequence with the TLB on and
// off and checks that simulated state — stats, clock, translated addresses,
// fault identities — is bit-identical. The broader cross-stack version of
// this is TestTLBEquivalence in internal/campaign.
func TestTLBTransparent(t *testing.T) {
	type outcome struct {
		addrs  []physmem.Addr
		faults []Fault
		stats  Stats
		cycles simtime.Cycles
	}
	run := func(tlbOn bool) outcome {
		old := TLBDefault
		TLBDefault = tlbOn
		defer func() { TLBDefault = old }()
		clock := &simtime.Clock{}
		as := New(physmem.MustNew(1<<20), clock)
		var o outcome
		xlate := func(va VAddr, write bool) {
			pa, f := as.Translate(va, write)
			if f != nil {
				o.faults = append(o.faults, *f)
			} else {
				o.addrs = append(o.addrs, pa)
			}
		}
		must := func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		}
		must(as.Map(0x10000, 4, ProtRW))
		for pass := 0; pass < 3; pass++ {
			for va := VAddr(0x10000); va < 0x14000; va += 512 {
				xlate(va, pass%2 == 0)
			}
		}
		must(as.Protect(0x11000, 1, ProtRead))
		xlate(0x11000, true) // prot fault
		xlate(0x11000, false)
		must(as.Pin(0x12000))
		as.SwapOutLRU(2)
		xlate(0x10000, false)
		xlate(0x13000, true)
		must(as.Unpin(0x12000))
		_, _, err := as.MigratePage(0x10000)
		must(err)
		xlate(0x10040, false)
		must(as.Unmap(0x13000, 1))
		xlate(0x13000, false) // unmapped fault
		o.stats = as.Stats()
		o.cycles = clock.Now()
		return o
	}
	on, off := run(true), run(false)
	if on.stats != off.stats {
		t.Fatalf("stats diverge:\n on: %+v\noff: %+v", on.stats, off.stats)
	}
	if on.cycles != off.cycles {
		t.Fatalf("cycles diverge: on=%d off=%d", on.cycles, off.cycles)
	}
	if len(on.addrs) != len(off.addrs) || len(on.faults) != len(off.faults) {
		t.Fatalf("result counts diverge")
	}
	for i := range on.addrs {
		if on.addrs[i] != off.addrs[i] {
			t.Fatalf("addr %d diverges: on=%#x off=%#x", i, uint64(on.addrs[i]), uint64(off.addrs[i]))
		}
	}
	for i := range on.faults {
		if on.faults[i] != off.faults[i] {
			t.Fatalf("fault %d diverges: on=%+v off=%+v", i, on.faults[i], off.faults[i])
		}
	}
}
