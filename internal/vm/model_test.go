package vm

import (
	"math/rand"
	"testing"

	"safemem/internal/physmem"
	"safemem/internal/simtime"
)

// TestAgainstReferenceModel drives the address space with random map /
// unmap / protect / pin / swap / translate traffic, mirroring the state in
// a simple reference model, and checks that translation outcomes, pin
// semantics and frame accounting always agree.
func TestAgainstReferenceModel(t *testing.T) {
	const frames = 32
	clock := &simtime.Clock{}
	mem := physmem.MustNew(frames * PageBytes)
	as := New(mem, clock)

	type page struct {
		prot   Prot
		pinned int
	}
	model := map[uint64]*page{} // vpn -> state
	rng := rand.New(rand.NewSource(555))

	for step := 0; step < 20_000; step++ {
		vpn := uint64(rng.Intn(64))
		va := VAddr(vpn * PageBytes)
		switch rng.Intn(12) {
		case 0, 1, 2: // map
			n := rng.Intn(3) + 1
			conflict := false
			for i := 0; i < n; i++ {
				if _, ok := model[vpn+uint64(i)]; ok {
					conflict = true
				}
			}
			room := as.FreeFrames() >= n // observable pre-state
			err := as.Map(va, n, ProtRW)
			if conflict || !room {
				if err == nil {
					t.Fatalf("step %d: Map(%d,%d) succeeded; conflict=%v room=%v", step, vpn, n, conflict, room)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d: Map failed: %v", step, err)
				}
				for i := 0; i < n; i++ {
					model[vpn+uint64(i)] = &page{prot: ProtRW}
				}
			}
		case 3: // unmap
			p, ok := model[vpn]
			err := as.Unmap(va, 1)
			if !ok || p.pinned > 0 {
				if err == nil {
					t.Fatalf("step %d: Unmap(%d) succeeded; model ok=%v", step, vpn, ok)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d: Unmap failed: %v", step, err)
				}
				delete(model, vpn)
			}
		case 4, 5: // protect
			prot := []Prot{ProtNone, ProtRead, ProtRW}[rng.Intn(3)]
			err := as.Protect(va, 1, prot)
			if p, ok := model[vpn]; ok {
				if err != nil {
					t.Fatalf("step %d: Protect failed: %v", step, err)
				}
				p.prot = prot
			} else if err == nil {
				t.Fatalf("step %d: Protect of unmapped page succeeded", step)
			}
		case 6: // pin
			wasResident := as.Present(va)
			err := as.Pin(va)
			if p, ok := model[vpn]; ok {
				if err != nil {
					if !wasResident {
						// Pinning a swapped-out page needs a swap-in, which
						// can fail when every frame is pinned.
						break
					}
					t.Fatalf("step %d: Pin failed: %v", step, err)
				}
				p.pinned++
			} else if err == nil {
				t.Fatalf("step %d: Pin of unmapped page succeeded", step)
			}
		case 7: // unpin
			err := as.Unpin(va)
			if p, ok := model[vpn]; ok && p.pinned > 0 {
				if err != nil {
					t.Fatalf("step %d: Unpin failed: %v", step, err)
				}
				p.pinned--
			} else if err == nil {
				t.Fatalf("step %d: bad Unpin succeeded", step)
			}
		case 8: // swap pressure
			want := 0
			for _, p := range model {
				if p.pinned == 0 {
					want++
				}
			}
			n := rng.Intn(4)
			got := as.SwapOutLRU(n)
			max := n
			if want < max {
				max = want
			}
			if got > max {
				t.Fatalf("step %d: swapped %d, at most %d evictable", step, got, max)
			}
		default: // translate
			write := rng.Intn(2) == 0
			wasResident := as.Present(va)
			_, fault := as.Translate(va+VAddr(rng.Intn(PageBytes)), write)
			p, ok := model[vpn]
			switch {
			case !ok:
				if fault == nil || fault.Kind != FaultUnmapped {
					t.Fatalf("step %d: unmapped translate fault = %v", step, fault)
				}
			default:
				need := ProtRead
				if write {
					need = ProtWrite
				}
				switch {
				case p.prot&need == 0:
					// Demand swap-in runs before the protection check, so a
					// non-resident page may report the swap failure first.
					if fault == nil ||
						(fault.Kind != FaultProtection &&
							!(fault.Kind == FaultSwappedOut && !wasResident)) {
						t.Fatalf("step %d: protection violation fault = %v (prot %v write %v)", step, fault, p.prot, write)
					}
				case fault != nil && fault.Kind == FaultSwappedOut && !wasResident:
					// Legal only when the demand swap-in found no
					// evictable frame.
				case fault != nil:
					// Swapped-out pages swap back in transparently, so a
					// permitted access never faults otherwise.
					t.Fatalf("step %d: permitted access faulted: %v", step, fault)
				}
			}
		}
		// Mapped-page accounting always agrees with the model.
		if got := int(as.Stats().FramesInUse); got != len(model) {
			t.Fatalf("step %d: mapped pages %d, model %d", step, got, len(model))
		}
	}
}
