package vm

import (
	"testing"

	"safemem/internal/ecc"
	"safemem/internal/physmem"
)

func TestMigratePreservesRawBits(t *testing.T) {
	as, mem := newAS(4)
	if err := as.Map(0x10000, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	old, _ := as.FrameOf(0x10000)
	// A normal group and a scrambled one (stale check bits), like a watch.
	mem.WriteGroupRaw(old, 0x1234, uint8(ecc.Encode(0x1234)))
	mem.WriteGroupDataOnly(old+physmem.GroupBytes, ecc.Scramble(0xbeef))

	from, fresh, err := as.MigratePage(0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if from != old {
		t.Fatalf("migrated from %#x, want %#x", from, old)
	}
	if got, _ := as.FrameOf(0x10000); got != fresh {
		t.Fatalf("page maps to %#x, want fresh frame %#x", got, fresh)
	}
	d0, c0 := mem.ReadGroupRaw(fresh)
	if d0 != 0x1234 || c0 != uint8(ecc.Encode(0x1234)) {
		t.Fatalf("group 0 not copied: data=%#x check=%#x", d0, c0)
	}
	// The scrambled group must still decode as uncorrectable on the fresh
	// frame — i.e. check bits were copied verbatim, not re-encoded.
	d1, c1 := mem.ReadGroupRaw(fresh + physmem.GroupBytes)
	if d1 != ecc.Scramble(0xbeef) {
		t.Fatalf("group 1 data = %#x", d1)
	}
	if _, _, res := ecc.Decode(d1, ecc.Check(c1)); res != ecc.Uncorrectable {
		t.Fatalf("scramble did not survive migration: decode = %v", res)
	}
	// Old frame returned to the free list.
	if as.FreeFrames() != 3 {
		t.Fatalf("FreeFrames = %d, want 3", as.FreeFrames())
	}
	if as.Stats().Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", as.Stats().Migrations)
	}
}

func TestMigrateKeepsPins(t *testing.T) {
	as, _ := newAS(4)
	if err := as.Map(0x10000, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Pin(0x10000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := as.MigratePage(0x10000); err != nil {
		t.Fatal(err)
	}
	if as.Pinned(0x10000) != 1 {
		t.Fatalf("pin count = %d after migration, want 1", as.Pinned(0x10000))
	}
}

func TestRetirePageQuarantinesFrame(t *testing.T) {
	as, _ := newAS(3)
	if err := as.Map(0x10000, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	old, _ := as.FrameOf(0x10000)
	retired, fresh, err := as.RetirePage(0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if retired != old || fresh == old {
		t.Fatalf("retired=%#x fresh=%#x old=%#x", retired, fresh, old)
	}
	if !as.Retired(old) || as.RetiredFrames() != 1 {
		t.Fatal("old frame not quarantined")
	}
	if as.Stats().FramesRetired != 1 {
		t.Fatalf("FramesRetired = %d, want 1", as.Stats().FramesRetired)
	}
	// The retired frame must never come back: mapping every remaining frame
	// succeeds (1 free left of 3 total), then the next Map fails rather than
	// reusing the quarantined frame.
	if err := as.Map(0x20000, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x30000, 1, ProtRW); err == nil {
		f, _ := as.FrameOf(0x30000)
		t.Fatalf("Map handed out a frame (%#x) with none free; retired frame reused?", f)
	}
}

func TestMigrateValidation(t *testing.T) {
	as, _ := newAS(2)
	if _, _, err := as.MigratePage(0x10000); err == nil {
		t.Fatal("migrate of unmapped page succeeded")
	}
	// With every frame in use and no swap candidate but the page itself,
	// migration of a pinned page must fail cleanly, not deadlock.
	if err := as.Map(0x10000, 2, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Pin(0x10000); err != nil {
		t.Fatal(err)
	}
	if err := as.Pin(0x10000 + PageBytes); err != nil {
		t.Fatal(err)
	}
	if _, _, err := as.MigratePage(0x10000); err == nil {
		t.Fatal("migrate with no free or evictable frames succeeded")
	}
}
