package callstack

import (
	"testing"
	"testing/quick"
)

func TestPushPopDepth(t *testing.T) {
	var s Stack
	if s.Depth() != 0 || s.Top() != 0 || s.Signature() != 0 {
		t.Fatal("zero value not empty")
	}
	s.Push(0x100)
	s.Push(0x200)
	if s.Depth() != 2 || s.Top() != 0x200 {
		t.Fatalf("depth=%d top=%#x", s.Depth(), s.Top())
	}
	s.Pop()
	if s.Top() != 0x100 {
		t.Fatal("pop did not expose previous frame")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	var s Stack
	defer func() {
		if recover() == nil {
			t.Fatal("pop of empty stack did not panic")
		}
	}()
	s.Pop()
}

func TestSignatureUsesOnlyTopFour(t *testing.T) {
	var a, b Stack
	for _, r := range []uint64{1, 2, 3, 4, 5} {
		a.Push(r)
	}
	for _, r := range []uint64{99, 2, 3, 4, 5} {
		b.Push(r)
	}
	if a.Signature() != b.Signature() {
		t.Fatal("frame deeper than 4 affected the signature")
	}
	b.Pop()
	b.Push(6)
	if a.Signature() == b.Signature() {
		t.Fatal("top frame change did not affect the signature")
	}
}

func TestSignatureOrderSensitive(t *testing.T) {
	var a, b Stack
	a.Push(0x10)
	a.Push(0x20)
	b.Push(0x20)
	b.Push(0x10)
	if a.Signature() == b.Signature() {
		t.Fatal("signature insensitive to call order")
	}
}

func TestSignatureDistinguishesCallSites(t *testing.T) {
	// Two different leaf call sites under the same ancestors must differ.
	mk := func(leaf uint64) uint64 {
		var s Stack
		s.Push(0x400100)
		s.Push(0x400200)
		s.Push(0x400300)
		s.Push(leaf)
		return s.Signature()
	}
	seen := map[uint64]uint64{}
	for leaf := uint64(0x500000); leaf < 0x500040; leaf += 8 {
		sig := mk(leaf)
		if prev, dup := seen[sig]; dup {
			t.Fatalf("collision: leaves %#x and %#x share signature %#x", prev, leaf, sig)
		}
		seen[sig] = leaf
	}
}

func TestQuickPushPopRestoresSignature(t *testing.T) {
	f := func(base []uint64, extra uint64) bool {
		var s Stack
		for _, r := range base {
			s.Push(r)
		}
		before := s.Signature()
		s.Push(extra)
		s.Pop()
		return s.Signature() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSignature(b *testing.B) {
	var s Stack
	for _, r := range []uint64{0x400100, 0x400200, 0x400300, 0x400400, 0x400500} {
		s.Push(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Signature()
	}
}

func BenchmarkPushPop(b *testing.B) {
	var s Stack
	for i := 0; i < b.N; i++ {
		s.Push(uint64(i))
		s.Pop()
	}
}
