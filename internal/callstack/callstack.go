// Package callstack tracks the simulated program's call stack and computes
// the call-stack signature SafeMem uses to group memory objects: the
// exclusive-or of the rotated return addresses of the most recent four
// functions on the stack (Section 3, footnote 1).
package callstack

import "math/bits"

// SignatureDepth is the number of recent frames folded into a signature.
const SignatureDepth = 4

// Stack is the simulated call stack. The zero value is an empty stack.
type Stack struct {
	frames []uint64
}

// Push records entry into a function called from return address ret.
func (s *Stack) Push(ret uint64) { s.frames = append(s.frames, ret) }

// Pop records return from the current function. Popping an empty stack
// panics: it indicates a bug in the simulated program's bracketing.
func (s *Stack) Pop() {
	if len(s.frames) == 0 {
		panic("callstack: pop of empty stack")
	}
	s.frames = s.frames[:len(s.frames)-1]
}

// Depth returns the current stack depth.
func (s *Stack) Depth() int { return len(s.frames) }

// Signature folds the most recent SignatureDepth return addresses into a
// 64-bit value by rotating each by its distance from the top and XOR-ing.
// Shallower stacks fold what is available; the empty stack has signature 0.
func (s *Stack) Signature() uint64 {
	var sig uint64
	n := len(s.frames)
	for i := 0; i < SignatureDepth && i < n; i++ {
		sig ^= bits.RotateLeft64(s.frames[n-1-i], i*13)
	}
	return sig
}

// Snapshot returns a copy of the stack's frames, bottom first. Pair with
// Restore to checkpoint the stack across a machine snapshot.
func (s *Stack) Snapshot() []uint64 { return append([]uint64(nil), s.frames...) }

// Restore replaces the stack's contents with the given frames (copied).
// Restoring an empty snapshot onto a stack whose slice already has capacity
// allocates nothing.
func (s *Stack) Restore(frames []uint64) { s.frames = append(s.frames[:0], frames...) }

// Top returns the most recent return address, or 0 for an empty stack.
func (s *Stack) Top() uint64 {
	if len(s.frames) == 0 {
		return 0
	}
	return s.frames[len(s.frames)-1]
}
