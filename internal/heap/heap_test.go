package heap

import (
	"testing"
	"testing/quick"

	"safemem/internal/machine"
	"safemem/internal/vm"
)

func newHeap(t *testing.T, opts Options) (*Allocator, *machine.Machine) {
	t.Helper()
	m, err := machine.New(machine.Config{MemBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func TestOptionValidation(t *testing.T) {
	m := machine.MustNew(machine.Config{MemBytes: 1 << 20})
	for _, opts := range []Options{
		{Align: 3},
		{Align: 4},
		{Base: 0x1001},
		{Align: 64, PadBytes: 65},
	} {
		if _, err := New(m, opts); err == nil {
			t.Errorf("options %+v accepted", opts)
		}
	}
}

func TestMallocFreeRoundTrip(t *testing.T) {
	a, m := newHeap(t, Options{})
	p, err := a.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(p)%8 != 0 {
		t.Fatalf("pointer %#x not 8-byte aligned", uint64(p))
	}
	m.Store64(p, 42)
	if m.Load64(p) != 42 {
		t.Fatal("allocated memory not usable")
	}
	if a.Live() != 1 {
		t.Fatalf("Live = %d", a.Live())
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if a.Live() != 0 {
		t.Fatal("block still live after free")
	}
	if err := a.Free(p); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestDistinctBlocksDontOverlap(t *testing.T) {
	a, _ := newHeap(t, Options{Align: 64, PadBytes: 64})
	type rng struct{ lo, hi uint64 }
	var ranges []rng
	for i := 0; i < 50; i++ {
		p, err := a.Malloc(uint64(i%7)*24 + 1)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := a.BlockAt(p)
		r := rng{uint64(b.FullAddr), uint64(b.FullAddr) + b.FullSize}
		for _, o := range ranges {
			if r.lo < o.hi && o.lo < r.hi {
				t.Fatalf("overlap: [%#x,%#x) and [%#x,%#x)", r.lo, r.hi, o.lo, o.hi)
			}
		}
		ranges = append(ranges, r)
	}
}

func TestAlignmentAndPadding(t *testing.T) {
	a, _ := newHeap(t, Options{Align: 64, PadBytes: 64})
	p, err := a.Malloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(p)%64 != 0 {
		t.Fatalf("pointer %#x not line aligned", uint64(p))
	}
	b, _ := a.BlockAt(p)
	if b.RoundedSize != 64 {
		t.Fatalf("RoundedSize = %d, want 64", b.RoundedSize)
	}
	if b.FullSize != 64+2*64 {
		t.Fatalf("FullSize = %d, want 192", b.FullSize)
	}
	if b.PadBefore() != p-64 || b.PadAfter() != p+64 {
		t.Fatalf("pads = %#x/%#x around %#x", uint64(b.PadBefore()), uint64(b.PadAfter()), uint64(p))
	}
	if uint64(b.PadBefore())%64 != 0 || uint64(b.PadAfter())%64 != 0 {
		t.Fatal("pads not line aligned")
	}
}

func TestCallocZeroes(t *testing.T) {
	a, m := newHeap(t, Options{})
	// Dirty some memory, free it, then calloc over the same region.
	p, _ := a.Malloc(256)
	m.Memset(p, 0xff, 256)
	a.Free(p)
	q, err := a.Calloc(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 256; i += 8 {
		if got := m.Load64(q + vm.VAddr(i)); got != 0 {
			t.Fatalf("calloc byte %d = %#x", i, got)
		}
	}
}

func TestReallocPreservesPrefix(t *testing.T) {
	a, m := newHeap(t, Options{})
	p, _ := a.Malloc(16)
	m.Store64(p, 0x1111)
	m.Store64(p+8, 0x2222)
	q, err := a.Realloc(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m.Load64(q) != 0x1111 || m.Load64(q+8) != 0x2222 {
		t.Fatal("realloc lost data")
	}
	if _, live := a.BlockAt(p); live && p != q {
		t.Fatal("old block still live after realloc")
	}
	// Shrink keeps the prefix.
	r, err := a.Realloc(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Load64(r) != 0x1111 {
		t.Fatal("shrinking realloc lost data")
	}
	if _, err := a.Realloc(0x999999, 8); err == nil {
		t.Fatal("realloc of unknown pointer accepted")
	}
	if p2, err := a.Realloc(0, 8); err != nil || p2 == 0 {
		t.Fatal("realloc(NULL) should behave as malloc")
	}
}

func TestFreeListCoalescing(t *testing.T) {
	a, _ := newHeap(t, Options{})
	p1, _ := a.Malloc(64)
	p2, _ := a.Malloc(64)
	p3, _ := a.Malloc(64)
	a.Free(p1)
	a.Free(p3)
	a.Free(p2) // middle free must coalesce all three
	// A block spanning all three extents must now fit without growing.
	arenaBefore := a.Stats().ArenaBytes
	q, err := a.Malloc(192)
	if err != nil {
		t.Fatal(err)
	}
	if q != p1 {
		t.Fatalf("coalesced alloc at %#x, want %#x", uint64(q), uint64(p1))
	}
	if a.Stats().ArenaBytes != arenaBefore {
		t.Fatal("arena grew despite coalesced space")
	}
}

func TestReuseAfterFree(t *testing.T) {
	a, _ := newHeap(t, Options{Align: 64, PadBytes: 64})
	p, _ := a.Malloc(100)
	a.Free(p)
	q, _ := a.Malloc(100)
	if q != p {
		t.Fatalf("first-fit did not reuse freed extent: %#x vs %#x", uint64(q), uint64(p))
	}
}

func TestArenaLimit(t *testing.T) {
	a, _ := newHeap(t, Options{Limit: 64 * 1024})
	var ptrs []vm.VAddr
	for {
		p, err := a.Malloc(4096)
		if err != nil {
			break
		}
		ptrs = append(ptrs, p)
	}
	if len(ptrs) == 0 || len(ptrs) > 16 {
		t.Fatalf("allocated %d×4KiB within a 64KiB arena", len(ptrs))
	}
	if a.Stats().FailedAlloc == 0 {
		t.Fatal("failure not counted")
	}
}

func TestStatsAccounting(t *testing.T) {
	a, _ := newHeap(t, Options{Align: 64, PadBytes: 64})
	p1, _ := a.Malloc(10) // waste: 54 align + 128 pad
	p2, _ := a.Malloc(64) // waste: 128 pad
	st := a.Stats()
	if st.BytesLive != 74 || st.TotalUser != 74 {
		t.Fatalf("user bytes = %d/%d", st.BytesLive, st.TotalUser)
	}
	wantWaste := uint64((64 - 10) + 128 + 128)
	if st.WasteLive != wantWaste {
		t.Fatalf("WasteLive = %d, want %d", st.WasteLive, wantWaste)
	}
	a.Free(p1)
	a.Free(p2)
	st = a.Stats()
	if st.BytesLive != 0 || st.WasteLive != 0 {
		t.Fatalf("live after frees = %d/%d", st.BytesLive, st.WasteLive)
	}
	if st.BytesPeak != 74 || st.WastePeak != wantWaste {
		t.Fatalf("peaks = %d/%d", st.BytesPeak, st.WastePeak)
	}
}

func TestSiteSignatureCaptured(t *testing.T) {
	a, m := newHeap(t, Options{})
	m.Call(0x111)
	p1, _ := a.Malloc(8)
	m.Return()
	m.Call(0x222)
	p2, _ := a.Malloc(8)
	m.Return()
	b1, _ := a.BlockAt(p1)
	b2, _ := a.BlockAt(p2)
	if b1.Site == b2.Site {
		t.Fatal("different call sites share a signature")
	}
	if b1.Seq >= b2.Seq {
		t.Fatal("sequence numbers not increasing")
	}
}

type recordingHook struct {
	allocs, frees []*Block
}

func (r *recordingHook) OnAlloc(b *Block) { r.allocs = append(r.allocs, b) }
func (r *recordingHook) OnFree(b *Block)  { r.frees = append(r.frees, b) }

func TestHooks(t *testing.T) {
	a, _ := newHeap(t, Options{})
	h := &recordingHook{}
	a.AddHook(h)
	p, _ := a.Malloc(8)
	a.Free(p)
	if len(h.allocs) != 1 || len(h.frees) != 1 {
		t.Fatalf("hook saw %d/%d events", len(h.allocs), len(h.frees))
	}
	if h.allocs[0] != h.frees[0] {
		t.Fatal("alloc and free delivered different blocks")
	}
}

func TestBlockContaining(t *testing.T) {
	a, _ := newHeap(t, Options{})
	p, _ := a.Malloc(32)
	if b, ok := a.BlockContaining(p + 31); !ok || b.Addr != p {
		t.Fatal("interior pointer not resolved")
	}
	if _, ok := a.BlockContaining(p + 32); ok {
		t.Fatal("one-past-end resolved to block")
	}
}

func TestQuickLiveAccountingInvariant(t *testing.T) {
	a, _ := newHeap(t, Options{Align: 64, PadBytes: 64})
	live := map[vm.VAddr]uint64{}
	f := func(sizes []uint16, freeMask []bool) bool {
		for _, s := range sizes {
			p, err := a.Malloc(uint64(s%2000) + 1)
			if err != nil {
				return true
			}
			live[p] = uint64(s%2000) + 1
		}
		i := 0
		for p := range live {
			if i < len(freeMask) && freeMask[i] {
				if a.Free(p) != nil {
					return false
				}
				delete(live, p)
			}
			i++
		}
		var sum uint64
		for _, s := range live {
			sum += s
		}
		return a.Stats().BytesLive == sum && a.Live() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// newHeapB is newHeap for benchmarks.
func newHeapB(b *testing.B, opts Options) (*Allocator, *machine.Machine) {
	b.Helper()
	m, err := machine.New(machine.Config{MemBytes: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	a, err := New(m, opts)
	if err != nil {
		b.Fatal(err)
	}
	return a, m
}
