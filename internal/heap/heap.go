// Package heap implements the simulated C heap: malloc/calloc/realloc/free
// over the machine's virtual address space, with a first-fit free list,
// coalescing, demand growth via the kernel's page-mapping calls, and the
// two knobs the paper's tools need:
//
//   - per-allocator alignment and per-buffer padding, so SafeMem can make
//     every buffer cache-line aligned with one guard line at each end
//     (Section 4), and the page-protection baseline can do the same at page
//     granularity (Section 6.3 / Table 4);
//   - allocation/deallocation hooks, the interposition point corresponding
//     to the paper's LD_PRELOAD wrapping of malloc/free (Section 3.2.1).
package heap

import (
	"fmt"
	"sort"

	"safemem/internal/machine"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

// Cost-model charges for the allocator itself (glibc bookkeeping).
const (
	costMalloc simtime.Cycles = 80
	costFree   simtime.Cycles = 60
)

// Block describes one live allocation.
type Block struct {
	// Addr and Size are the user-visible pointer and requested size.
	Addr vm.VAddr
	Size uint64
	// RoundedSize is Size rounded up to the allocator's alignment unit.
	RoundedSize uint64
	// FullAddr and FullSize cover the entire extent consumed, including
	// alignment slack and guard padding.
	FullAddr vm.VAddr
	FullSize uint64
	// PadBytes is the guard padding at each end (0 when unpadded).
	PadBytes uint64
	// Site is the call-stack signature at allocation time.
	Site uint64
	// AllocTime is the simulated CPU time of the allocation.
	AllocTime simtime.Cycles
	// Seq is a monotonically increasing allocation number.
	Seq uint64
}

// PadBefore returns the address of the leading guard region (valid only
// when PadBytes > 0).
func (b *Block) PadBefore() vm.VAddr { return b.Addr - vm.VAddr(b.PadBytes) }

// PadAfter returns the address of the trailing guard region (valid only
// when PadBytes > 0).
func (b *Block) PadAfter() vm.VAddr { return b.Addr + vm.VAddr(b.RoundedSize) }

// Hook observes allocation events. Both methods run after the allocator's
// own bookkeeping; OnFree runs before the extent is returned to the free
// list.
type Hook interface {
	OnAlloc(b *Block)
	OnFree(b *Block)
}

// Options configures an Allocator.
type Options struct {
	// Base is the first virtual address of the arena. Default 0x1000000.
	Base vm.VAddr
	// Limit is the arena's maximum size in bytes. Default 32 MiB.
	Limit uint64
	// Align is the alignment of every user pointer and the rounding unit of
	// every user size. Must be a power of two ≥ 8. Default 8 (plain
	// malloc); SafeMem uses 64 (cache-line aligned, Section 4); the
	// page-protection baseline uses 4096.
	Align uint64
	// PadBytes inserts a guard region of this many bytes at each end of
	// every buffer. Must be 0 or a multiple of Align. SafeMem uses one
	// cache line (64); the page-protection baseline uses one page (4096).
	PadBytes uint64
}

// Stats counts allocator activity and the space accounting behind Table 4.
type Stats struct {
	Mallocs     uint64
	Frees       uint64
	Reallocs    uint64
	BytesLive   uint64 // user bytes currently allocated
	BytesPeak   uint64 // peak user bytes
	WasteLive   uint64 // non-user bytes currently consumed (align + padding)
	WastePeak   uint64
	TotalUser   uint64 // cumulative user bytes ever requested
	TotalWaste  uint64 // cumulative waste bytes ever consumed
	ArenaBytes  uint64 // pages mapped
	FailedAlloc uint64
}

// free extent (sorted by address, coalesced).
type extent struct {
	addr vm.VAddr
	size uint64
}

// Allocator is the simulated heap. Not safe for concurrent use.
type Allocator struct {
	m      *machine.Machine
	opts   Options
	brk    vm.VAddr // end of mapped arena
	free   []extent // sorted by addr
	blocks map[vm.VAddr]*Block
	hooks  []Hook
	seq    uint64
	stats  Stats
}

// New creates an allocator on machine m.
func New(m *machine.Machine, opts Options) (*Allocator, error) {
	if opts.Base == 0 {
		opts.Base = 0x1000000
	}
	if opts.Limit == 0 {
		opts.Limit = 32 << 20
	}
	if opts.Align == 0 {
		opts.Align = 8
	}
	if opts.Align < 8 || opts.Align&(opts.Align-1) != 0 {
		return nil, fmt.Errorf("heap: align %d is not a power of two ≥ 8", opts.Align)
	}
	if opts.Base.PageOffset() != 0 {
		return nil, fmt.Errorf("heap: base %#x not page aligned", uint64(opts.Base))
	}
	if opts.PadBytes%opts.Align != 0 {
		return nil, fmt.Errorf("heap: padding %d not a multiple of alignment %d", opts.PadBytes, opts.Align)
	}
	a := &Allocator{
		m:      m,
		opts:   opts,
		brk:    opts.Base,
		blocks: make(map[vm.VAddr]*Block),
	}
	m.Telemetry.RegisterSource("heap", func(emit func(string, float64)) {
		s := a.stats
		emit("mallocs", float64(s.Mallocs))
		emit("frees", float64(s.Frees))
		emit("reallocs", float64(s.Reallocs))
		emit("bytes_live", float64(s.BytesLive))
		emit("bytes_peak", float64(s.BytesPeak))
		emit("waste_live", float64(s.WasteLive))
		emit("waste_peak", float64(s.WastePeak))
		emit("total_user", float64(s.TotalUser))
		emit("total_waste", float64(s.TotalWaste))
		emit("arena_bytes", float64(s.ArenaBytes))
		emit("failed_alloc", float64(s.FailedAlloc))
	})
	return a, nil
}

// MustNew is New, panicking on error.
func MustNew(m *machine.Machine, opts Options) *Allocator {
	a, err := New(m, opts)
	if err != nil {
		panic(err)
	}
	return a
}

// AddHook registers an allocation hook.
func (a *Allocator) AddHook(h Hook) { a.hooks = append(a.hooks, h) }

// Options returns the allocator's configuration.
func (a *Allocator) Options() Options { return a.opts }

// Stats returns a copy of the counters.
func (a *Allocator) Stats() Stats { return a.stats }

// Live returns the number of live blocks.
func (a *Allocator) Live() int { return len(a.blocks) }

// LiveBlocks returns all live blocks sorted by address (for scanners).
func (a *Allocator) LiveBlocks() []*Block {
	out := make([]*Block, 0, len(a.blocks))
	for _, b := range a.blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// BlockAt returns the live block whose user pointer is va.
func (a *Allocator) BlockAt(va vm.VAddr) (*Block, bool) {
	b, ok := a.blocks[va]
	return b, ok
}

// BlockContaining returns the live block whose user range contains va.
func (a *Allocator) BlockContaining(va vm.VAddr) (*Block, bool) {
	// Binary search over sorted addresses would need an index; the map scan
	// here is only used by tests and bug reporters, never on hot paths.
	for _, b := range a.blocks {
		if va >= b.Addr && va < b.Addr+vm.VAddr(b.Size) {
			return b, true
		}
	}
	return nil, false
}

func roundUp(n, unit uint64) uint64 {
	if n == 0 {
		n = 1
	}
	return (n + unit - 1) &^ (unit - 1)
}

// fullSize returns the total extent consumed by a request of size bytes.
func (a *Allocator) fullSize(size uint64) uint64 {
	return roundUp(size, a.opts.Align) + 2*a.opts.PadBytes
}

// grow extends the mapped arena so that the free list contains an extent of
// at least need bytes.
func (a *Allocator) grow(need uint64) error {
	pages := int((need + vm.PageBytes - 1) / vm.PageBytes)
	// Grow geometrically to amortise the syscall, like a real sbrk policy.
	if min := int(a.stats.ArenaBytes / (8 * vm.PageBytes)); pages < min {
		pages = min
	}
	if pages < 4 {
		pages = 4
	}
	newBytes := uint64(pages) * vm.PageBytes
	if uint64(a.brk-a.opts.Base)+newBytes > a.opts.Limit {
		return fmt.Errorf("heap: arena limit %d exceeded", a.opts.Limit)
	}
	if err := a.m.Kern.MapPages(a.brk, pages); err != nil {
		return err
	}
	a.insertFree(extent{addr: a.brk, size: newBytes})
	a.brk += vm.VAddr(newBytes)
	a.stats.ArenaBytes += newBytes
	return nil
}

// insertFree adds e to the sorted free list, coalescing with neighbours.
func (a *Allocator) insertFree(e extent) {
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr > e.addr })
	a.free = append(a.free, extent{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = e
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].addr+vm.VAddr(a.free[i].size) == a.free[i+1].addr {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].addr+vm.VAddr(a.free[i-1].size) == a.free[i].addr {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// carve takes need bytes from the first fitting free extent.
func (a *Allocator) carve(need uint64) (vm.VAddr, bool) {
	for i := range a.free {
		if a.free[i].size >= need {
			addr := a.free[i].addr
			if a.free[i].size == need {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i].addr += vm.VAddr(need)
				a.free[i].size -= need
			}
			return addr, true
		}
	}
	return 0, false
}

// Malloc allocates size bytes and returns the user pointer.
func (a *Allocator) Malloc(size uint64) (vm.VAddr, error) {
	a.m.Clock.Advance(costMalloc)
	full := a.fullSize(size)
	addr, ok := a.carve(full)
	if !ok {
		if err := a.grow(full); err != nil {
			a.stats.FailedAlloc++
			return 0, err
		}
		addr, ok = a.carve(full)
		if !ok {
			a.stats.FailedAlloc++
			return 0, fmt.Errorf("heap: fragmentation prevented allocation of %d bytes", full)
		}
	}
	b := &Block{
		Addr:        addr + vm.VAddr(a.opts.PadBytes),
		Size:        size,
		RoundedSize: roundUp(size, a.opts.Align),
		FullAddr:    addr,
		FullSize:    full,
		PadBytes:    a.opts.PadBytes,
		Site:        a.m.Stack.Signature(),
		AllocTime:   a.m.Clock.Now(),
		Seq:         a.seq,
	}
	a.seq++
	a.blocks[b.Addr] = b
	a.stats.Mallocs++
	a.stats.BytesLive += size
	a.stats.TotalUser += size
	waste := full - size
	a.stats.WasteLive += waste
	a.stats.TotalWaste += waste
	if a.stats.BytesLive > a.stats.BytesPeak {
		a.stats.BytesPeak = a.stats.BytesLive
	}
	if a.stats.WasteLive > a.stats.WastePeak {
		a.stats.WastePeak = a.stats.WasteLive
	}
	for _, h := range a.hooks {
		h.OnAlloc(b)
	}
	return b.Addr, nil
}

// Calloc allocates n*size bytes of zeroed memory.
func (a *Allocator) Calloc(n, size uint64) (vm.VAddr, error) {
	total := n * size
	addr, err := a.Malloc(total)
	if err != nil {
		return 0, err
	}
	a.m.Memset(addr, 0, total)
	return addr, nil
}

// Free releases the block at va. Freeing an unknown pointer is reported as
// an error (the simulator's stand-in for heap corruption UB).
func (a *Allocator) Free(va vm.VAddr) error {
	a.m.Clock.Advance(costFree)
	b, ok := a.blocks[va]
	if !ok {
		return fmt.Errorf("heap: free of unknown pointer %#x", uint64(va))
	}
	for _, h := range a.hooks {
		h.OnFree(b)
	}
	delete(a.blocks, va)
	a.stats.Frees++
	a.stats.BytesLive -= b.Size
	a.stats.WasteLive -= b.FullSize - b.Size
	a.insertFree(extent{addr: b.FullAddr, size: b.FullSize})
	return nil
}

// Realloc resizes the block at va, moving it if necessary. A nil va acts as
// Malloc, matching C semantics.
func (a *Allocator) Realloc(va vm.VAddr, newSize uint64) (vm.VAddr, error) {
	if va == 0 {
		return a.Malloc(newSize)
	}
	old, ok := a.blocks[va]
	if !ok {
		return 0, fmt.Errorf("heap: realloc of unknown pointer %#x", uint64(va))
	}
	a.stats.Reallocs++
	newVA, err := a.Malloc(newSize)
	if err != nil {
		return 0, err
	}
	n := old.Size
	if newSize < n {
		n = newSize
	}
	a.m.Memcpy(newVA, va, n)
	if err := a.Free(va); err != nil {
		return 0, err
	}
	return newVA, nil
}

// ArenaRange returns the mapped arena [base, brk) for heap scanners.
func (a *Allocator) ArenaRange() (vm.VAddr, vm.VAddr) { return a.opts.Base, a.brk }

// Image is an immutable checkpoint of an Allocator, taken with CaptureImage.
// At the snapshot layer's capture point (heap created, nothing allocated)
// the arena is still unmapped — growth is lazy — so the image holds no
// blocks and no free extents, and restore is O(1).
type Image struct {
	a      *Allocator
	brk    vm.VAddr
	free   []extent
	blocks map[vm.VAddr]Block
	nhooks int
	seq    uint64
	stats  Stats
}

// CaptureImage checkpoints the allocator's bookkeeping. The mapped pages
// themselves belong to the machine snapshot; the two are restored together.
func (a *Allocator) CaptureImage() *Image {
	img := &Image{
		a:      a,
		brk:    a.brk,
		free:   append([]extent(nil), a.free...),
		blocks: make(map[vm.VAddr]Block, len(a.blocks)),
		nhooks: len(a.hooks),
		seq:    a.seq,
		stats:  a.stats,
	}
	for va, b := range a.blocks {
		img.blocks[va] = *b
	}
	return img
}

// RestoreImage puts the allocator back into the captured state. Hooks added
// after capture (none in the standard warmup, where tools attach before the
// snapshot) are dropped; live blocks get fresh copies so nothing a previous
// tenant held can alias into the restored heap.
func (a *Allocator) RestoreImage(img *Image) {
	if img.a != a {
		panic("heap: RestoreImage with an image captured from a different allocator")
	}
	a.brk = img.brk
	a.free = append(a.free[:0], img.free...)
	clear(a.blocks)
	for va, b := range img.blocks {
		bc := b
		a.blocks[va] = &bc
	}
	a.hooks = a.hooks[:img.nhooks]
	a.seq = img.seq
	a.stats = img.stats
}
