package heap

import (
	"math/rand"
	"testing"

	"safemem/internal/vm"
)

// TestAgainstReferenceModel drives the allocator with a long random
// malloc/free/realloc sequence, mirroring every operation in a simple
// reference model, and checks the invariants an allocator must uphold:
// no overlap between live extents, exact live accounting, and content
// preservation across realloc.
func TestAgainstReferenceModel(t *testing.T) {
	for _, opts := range []Options{
		{},                        // stock malloc
		{Align: 64, PadBytes: 64}, // SafeMem layout
		{Align: 4096, PadBytes: 4096, Limit: 256 << 20}, // page-protection layout
	} {
		opts := opts
		a, m := newHeap(t, opts)
		rng := rand.New(rand.NewSource(4242))

		type ref struct {
			addr vm.VAddr
			size uint64
			tag  byte
		}
		var live []ref

		checkNoOverlap := func() {
			blocks := a.LiveBlocks()
			for i := 1; i < len(blocks); i++ {
				prevEnd := blocks[i-1].FullAddr + vm.VAddr(blocks[i-1].FullSize)
				if blocks[i].FullAddr < prevEnd {
					t.Fatalf("overlap: [%#x+%d] and [%#x]",
						uint64(blocks[i-1].FullAddr), blocks[i-1].FullSize, uint64(blocks[i].FullAddr))
				}
			}
		}

		steps := 1500
		if opts.Align == 4096 {
			steps = 300 // page-granularity arenas are big
		}
		for step := 0; step < steps; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // malloc
				size := uint64(rng.Intn(2000) + 1)
				p, err := a.Malloc(size)
				if err != nil {
					continue // arena exhausted: acceptable, keep going
				}
				tag := byte(step)
				m.Memset(p, tag, size)
				live = append(live, ref{p, size, tag})
			case op < 6 && len(live) > 0: // free
				i := rng.Intn(len(live))
				if err := a.Free(live[i].addr); err != nil {
					t.Fatalf("free: %v", err)
				}
				live = append(live[:i], live[i+1:]...)
			case op < 8 && len(live) > 0: // realloc
				i := rng.Intn(len(live))
				newSize := uint64(rng.Intn(2500) + 1)
				q, err := a.Realloc(live[i].addr, newSize)
				if err != nil {
					continue
				}
				keep := live[i].size
				if newSize < keep {
					keep = newSize
				}
				for off := uint64(0); off < keep; off += 97 {
					if got := m.Load8(q + vm.VAddr(off)); got != live[i].tag {
						t.Fatalf("realloc lost byte %d: %d != %d", off, got, live[i].tag)
					}
				}
				// Newly grown region gets the tag too.
				m.Memset(q, live[i].tag, newSize)
				live[i].addr, live[i].size = q, newSize
			case len(live) > 0: // verify a random survivor
				r := live[rng.Intn(len(live))]
				off := vm.VAddr(rng.Intn(int(r.size)))
				if got := m.Load8(r.addr + off); got != r.tag {
					t.Fatalf("content of %#x+%d = %d, want %d", uint64(r.addr), off, got, r.tag)
				}
			}
			if step%100 == 0 {
				checkNoOverlap()
			}
			var wantLive uint64
			for _, r := range live {
				wantLive += r.size
			}
			if st := a.Stats(); st.BytesLive != wantLive || a.Live() != len(live) {
				t.Fatalf("step %d: accounting live=%d/%d model=%d/%d",
					step, st.BytesLive, a.Live(), wantLive, len(live))
			}
		}
		// Drain and confirm everything returns to the free list.
		for _, r := range live {
			if err := a.Free(r.addr); err != nil {
				t.Fatal(err)
			}
		}
		if st := a.Stats(); st.BytesLive != 0 || st.WasteLive != 0 || a.Live() != 0 {
			t.Fatalf("drain left live=%d waste=%d n=%d", a.Stats().BytesLive, a.Stats().WasteLive, a.Live())
		}
	}
}

func BenchmarkMallocFree(b *testing.B) {
	a, _ := newHeapB(b, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.Malloc(uint64(i%512 + 1))
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMallocFreeAligned(b *testing.B) {
	a, _ := newHeapB(b, Options{Align: 64, PadBytes: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.Malloc(uint64(i%512 + 1))
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}
