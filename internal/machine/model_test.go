package machine

import (
	"math/rand"
	"testing"

	"safemem/internal/vm"
)

// TestEndToEndAgainstFlatModel drives the whole machine stack — VM
// translation, cache, controller, ECC — with a long random program and
// checks every load against a flat byte model of the virtual address
// space, across swap pressure and protection changes.
func TestEndToEndAgainstFlatModel(t *testing.T) {
	m := MustNew(Config{MemBytes: 1 << 20}) // 256 frames: swap happens
	const base = vm.VAddr(0x100000)
	const pages = 128
	if err := m.Kern.MapPages(base, pages); err != nil {
		t.Fatal(err)
	}
	model := make([]byte, pages*vm.PageBytes)
	rng := rand.New(rand.NewSource(2024))

	sizes := []int{1, 2, 4, 8}
	for step := 0; step < 150_000; step++ {
		size := sizes[rng.Intn(len(sizes))]
		group := rng.Intn(pages * vm.PageBytes / 8)
		off := rng.Intn(8/size) * size
		va := base + vm.VAddr(group*8+off)
		idx := group*8 + off

		switch rng.Intn(5) {
		case 0, 1:
			v := rng.Uint64()
			m.Store(va, size, v)
			for i := 0; i < size; i++ {
				model[idx+i] = byte(v >> (8 * i))
			}
		case 2, 3:
			got := m.Load(va, size)
			var want uint64
			for i := size - 1; i >= 0; i-- {
				want = want<<8 | uint64(model[idx+i])
			}
			if got != want {
				t.Fatalf("step %d: load %d@%#x = %#x, model %#x", step, size, uint64(va), got, want)
			}
		default:
			// Background system activity.
			switch rng.Intn(3) {
			case 0:
				m.AS.SwapOutLRU(2)
			case 1:
				m.Cache.FlushAll()
			default:
				pg := base + vm.VAddr(rng.Intn(pages))*vm.PageBytes
				// Flip protection off and back on: must not affect data.
				if err := m.Kern.Mprotect(pg, 1, vm.ProtNone); err != nil {
					t.Fatal(err)
				}
				if err := m.Kern.Mprotect(pg, 1, vm.ProtRW); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Full final sweep.
	for i := 0; i < pages*vm.PageBytes; i += 8 {
		got := m.Load(base+vm.VAddr(i), 8)
		var want uint64
		for j := 7; j >= 0; j-- {
			want = want<<8 | uint64(model[i+j])
		}
		if got != want {
			t.Fatalf("final sweep diverged at +%#x: %#x vs %#x", i, got, want)
		}
	}
	if m.AS.Stats().SwapsOut == 0 {
		t.Fatal("no swap pressure was exercised")
	}
}
