package machine

import (
	"reflect"
	"testing"

	"safemem/internal/cache"
	"safemem/internal/kernel"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

// faultRecord is everything a mid-run ECC fault exposes to its handler: the
// faulting line, the simulated time of delivery, and the in-flight access
// the kernel would attribute a bug report to. All of it must be identical
// whether the surrounding run was batched or not.
type faultRecord struct {
	vline   vm.VAddr
	at      simtime.Cycles
	inVA    vm.VAddr
	inSize  int
	inWrite bool
	inOK    bool
}

// batchDigest is every simulated observable of the batch workload.
type batchDigest struct {
	cycles  simtime.Cycles
	instrs  uint64
	mstats  Stats
	cstats  cache.Stats
	sum     uint64
	wakes   []simtime.Cycles
	faults  []faultRecord
	protHit int
}

// batchWorkload drives every batched entry point through its interesting
// cases — page and line crossings, strided and misaligned runs, wake
// deadlines, watched lines, protection faults, swapped pages, cache and
// translation churn between runs — and digests all simulated state.
// The second return value is the machine's host-side lane counters
// (runs, fastOps, slowOps).
func batchWorkload(t *testing.T, batched bool) (batchDigest, [3]uint64) {
	t.Helper()
	m := MustNew(Config{MemBytes: 1 << 20})
	m.SetBatch(batched)
	var d batchDigest
	h := func(v uint64) { d.sum = d.sum*0x9e3779b97f4a7c15 + v }

	err := m.Run(func() error {
		const base = vm.VAddr(0x40000)
		if err := m.Kern.MapPages(base, 8); err != nil {
			return err
		}

		// Contiguous word runs spanning lines and pages.
		buf := make([]uint64, 1200)
		for i := range buf {
			buf[i] = uint64(i) * 0x2545f4914f6cdd1d
		}
		m.StoreRun(base, 8, 8, buf)
		out := make([]uint64, len(buf))
		m.LoadRun(base, 8, 8, out)
		for _, v := range out {
			h(v)
		}

		// Strided halfword runs (the non-contiguous runOp path).
		m.StoreRun(base+4096, 2, 16, buf[:256])
		m.LoadRun(base+4096, 2, 16, out[:256])
		for _, v := range out[:256] {
			h(v)
		}

		// Misaligned byte runs crossing lines and a page boundary.
		bs := make([]byte, 700)
		for i := range bs {
			bs[i] = byte(i*37 + 11)
		}
		m.StoreByteRun(base+vm.PageBytes-333, bs)
		rb := make([]byte, len(bs))
		m.LoadByteRun(base+vm.PageBytes-333, rb)
		for _, v := range rb {
			h(uint64(v))
		}

		// Copies: aligned words, a misaligned head that co-aligns, and a
		// never-co-aligning byte stream.
		m.CopyRun(base+3*vm.PageBytes, base, 1024)
		m.CopyRun(base+3*vm.PageBytes+1024+3, base+3, 517)
		m.CopyRun(base+3*vm.PageBytes+2048+1, base+8, 300)
		m.LoadByteRun(base+3*vm.PageBytes, rb[:512])
		for _, v := range rb[:512] {
			h(uint64(v))
		}

		// Compares: full match, a planted mismatch, a short misaligned span.
		h(uint64(m.CompareRun(base, base+3*vm.PageBytes, 1024)))
		m.Store(base+3*vm.PageBytes+777, 1, m.Load(base+3*vm.PageBytes+777, 1)^0x5a)
		h(uint64(m.CompareRun(base, base+3*vm.PageBytes, 1024)))
		h(uint64(m.CompareRun(base+1, base+3*vm.PageBytes+1, 60)))

		// A mixed explicit batch: all sizes, loads and stores interleaved.
		ops := []AccessOp{
			{VA: base + 8, Size: 8},
			{VA: base + 16, Size: 4, Write: true, Val: 0xdeadbeef},
			{VA: base + 16, Size: 4},
			{VA: base + 21, Size: 1, Write: true, Val: 0x7f},
			{VA: base + 20, Size: 2},
			{VA: base + 24, Size: 8},
		}
		m.RunAccesses(ops)
		for _, op := range ops {
			h(op.Val)
		}

		// A wake deadline landing inside a long byte run: it must fire at
		// the identical simulated time either way.
		m.Clock.NewTimer(m.Clock.Now()+2000, func(now simtime.Cycles) simtime.Cycles {
			d.wakes = append(d.wakes, now)
			return 0
		})
		m.StoreByteRun(base+2*vm.PageBytes, bs)
		m.LoadByteRun(base+2*vm.PageBytes, rb)
		for _, v := range rb {
			h(uint64(v))
		}

		// A watched line landing mid-run: the ECC fault must carry the same
		// line, fire at the same simulated time, and observe the same
		// in-flight access whether or not the run is batched.
		m.Kern.RegisterECCFaultHandler(func(f *kernel.ECCFault) bool {
			fr := faultRecord{vline: f.VLine, at: m.Clock.Now()}
			fr.inVA, fr.inSize, fr.inWrite, fr.inOK = m.AccessInFlight()
			d.faults = append(d.faults, fr)
			return m.Kern.DisableWatchMemory(f.VLine, 64) == nil
		})
		if _, err := m.Kern.WatchMemory(base+128, 64); err != nil {
			return err
		}
		m.LoadByteRun(base, rb[:640])
		for _, v := range rb[:640] {
			h(uint64(v))
		}

		// A protection fault mid-run with a resolving handler.
		if err := m.Kern.Mprotect(base+5*vm.PageBytes, 1, vm.ProtRead); err != nil {
			return err
		}
		m.Kern.RegisterPageFaultHandler(func(f *vm.Fault) bool {
			d.protHit++
			return m.Kern.Mprotect(f.Addr.PageAddr(), 1, vm.ProtRW) == nil
		})
		m.StoreByteRun(base+5*vm.PageBytes-64, bs[:200])

		// Swapped pages under a batched run (slow-path demand swap-in).
		m.AS.SwapOutLRU(2)
		m.LoadRun(base+6*vm.PageBytes-64, 8, 8, out[:32])
		for _, v := range out[:32] {
			h(v)
		}

		// Cache and translation churn between runs: persistent windows must
		// be re-derived, never trusted.
		m.Cache.FlushAll()
		m.LoadRun(base, 8, 8, out[:16])
		for _, v := range out[:16] {
			h(v)
		}
		m.Compute(123)
		m.CopyRun(base+7*vm.PageBytes, base+64, 640)
		h(uint64(m.CompareRun(base+7*vm.PageBytes, base+64, 640)))
		return nil
	})
	if err != nil {
		t.Fatalf("batched=%v workload: %v", batched, err)
	}
	d.cycles = m.Clock.Now()
	d.instrs = m.Instructions()
	d.mstats = m.Stats()
	d.cstats = m.Cache.Stats()
	runs, fast, slow := m.BatchStats()
	return d, [3]uint64{runs, fast, slow}
}

// TestBatchEquivalence pins the fast lane's core contract: every simulated
// observable — values, instruction and cycle counts, machine and cache
// statistics, wake firing times, ECC-fault delivery (line, time, in-flight
// access), protection-fault counts — is bit-identical with the lane on and
// off, across every batched entry point and every bail-out reason.
func TestBatchEquivalence(t *testing.T) {
	on, lane := batchWorkload(t, true)
	off, laneOff := batchWorkload(t, false)
	if !reflect.DeepEqual(on, off) {
		t.Errorf("batched run diverges from per-access run:\non:  %+v\noff: %+v", on, off)
	}
	// Guard the test itself: the batched machine must actually have used
	// the lane (fast ops) AND exercised bail-outs (slow ops), and the
	// unbatched machine must never have entered it.
	if lane[0] == 0 || lane[1] == 0 || lane[2] == 0 {
		t.Errorf("batched workload did not exercise the lane: runs=%d fast=%d slow=%d",
			lane[0], lane[1], lane[2])
	}
	if laneOff != [3]uint64{} {
		t.Errorf("unbatched workload entered the lane: %v", laneOff)
	}
	// The workload's interesting events must all have happened, on both.
	if len(on.wakes) != 1 || len(on.faults) != 1 || on.protHit != 1 {
		t.Errorf("workload missed events: wakes=%d faults=%d protHit=%d",
			len(on.wakes), len(on.faults), on.protHit)
	}
	if len(on.faults) == 1 && !on.faults[0].inOK {
		t.Errorf("ECC fault observed no in-flight access: %+v", on.faults[0])
	}
}

// TestRecycleResetsBatchLane pins that a pooled machine cannot leak
// fast-lane state across tenants: counters, persistent windows and a
// pinned SetBatch mode must all reset to the defaults.
func TestRecycleResetsBatchLane(t *testing.T) {
	m := MustNew(Config{MemBytes: 1 << 20})
	m.SetBatch(true)
	if err := m.Run(func() error {
		if err := m.Kern.MapPages(0x10000, 2); err != nil {
			return err
		}
		m.StoreRun(0x10000, 8, 8, []uint64{1, 2, 3, 4})
		var out [4]uint64
		m.LoadRun(0x10000, 8, 8, out[:])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if runs, fast, _ := m.BatchStats(); runs == 0 || fast == 0 {
		t.Fatalf("workload never entered the fast lane (runs=%d fast=%d)", runs, fast)
	}
	if !m.batch.a.pageOK || !m.batch.a.lineOK {
		t.Fatal("expected an open persistent window before Recycle")
	}
	m.Recycle()
	if runs, fast, slow := m.BatchStats(); runs != 0 || fast != 0 || slow != 0 {
		t.Errorf("Recycle left lane counters: runs=%d fast=%d slow=%d", runs, fast, slow)
	}
	if m.batch.a.pageOK || m.batch.a.lineOK || m.batch.b.pageOK || m.batch.b.lineOK {
		t.Error("Recycle left a persistent window open")
	}
	if m.batch.mode != batchAuto {
		t.Errorf("Recycle kept pinned batch mode %v; must revert to BatchDefault", m.batch.mode)
	}
	if m.batch.cacheEpoch != 0 || m.batch.vmEpoch != 0 {
		t.Error("Recycle kept stale epoch snapshots")
	}
}

// TestPersistentWindowEpochs pins the invalidation contract the persistent
// windows rely on: every cache-residency mutation moves Cache.Epoch and
// every translation mutation moves AddressSpace.Epoch, so laneSegs can
// prove a window left open by a previous run is still valid.
func TestPersistentWindowEpochs(t *testing.T) {
	m := MustNew(Config{MemBytes: 1 << 20})
	if err := m.Run(func() error {
		if err := m.Kern.MapPages(0x10000, 4); err != nil {
			return err
		}
		ce, ve := m.Cache.Epoch(), m.AS.Epoch()
		if ve == 0 {
			t.Error("MapPages did not move the translation epoch")
		}
		m.Load64(0x10000) // miss fill
		if m.Cache.Epoch() == ce {
			t.Error("miss fill did not move the cache epoch")
		}
		ce = m.Cache.Epoch()
		m.Load64(0x10000) // pure hit: residency unchanged
		if m.Cache.Epoch() != ce {
			t.Error("a hit moved the cache epoch; persistent windows would never survive")
		}
		m.Cache.FlushAll()
		if m.Cache.Epoch() == ce {
			t.Error("FlushAll did not move the cache epoch")
		}
		ve = m.AS.Epoch()
		if err := m.Kern.Mprotect(0x11000, 1, vm.ProtRead); err != nil {
			return err
		}
		if m.AS.Epoch() == ve {
			t.Error("Mprotect did not move the translation epoch")
		}
		if err := m.Kern.Mprotect(0x11000, 1, vm.ProtRW); err != nil {
			return err
		}
		ve = m.AS.Epoch()
		if m.AS.SwapOutLRU(1) != 1 {
			t.Error("SwapOutLRU swapped nothing")
		}
		if m.AS.Epoch() == ve {
			t.Error("swap-out did not move the translation epoch")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Behavioral half: a window left open across runs is reused when the
	// epochs are quiet, and re-derived — with correct results — after churn.
	m2 := MustNew(Config{MemBytes: 1 << 20})
	m2.SetBatch(true)
	if err := m2.Run(func() error {
		if err := m2.Kern.MapPages(0x20000, 1); err != nil {
			return err
		}
		m2.StoreRun(0x20000, 8, 8, []uint64{11, 22, 33, 44})
		if !m2.batch.a.lineOK {
			t.Fatal("run did not leave its line window open")
		}
		line := m2.batch.a.line
		var out [4]uint64
		m2.LoadRun(0x20000, 8, 8, out[:])
		if m2.batch.a.line != line {
			t.Error("quiet epochs: second run re-derived the window instead of reusing it")
		}
		m2.Cache.FlushAll()
		misses := m2.Cache.Stats().Misses
		m2.LoadRun(0x20000, 8, 8, out[:])
		if out != [4]uint64{11, 22, 33, 44} {
			t.Errorf("post-flush batched load read %v", out)
		}
		// The flushed line must have been refilled through the slow path —
		// a stale window would have served the run without a single miss.
		if m2.Cache.Stats().Misses == misses {
			t.Error("stale window survived FlushAll: no refill miss")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchPathNoAllocs extends the per-access zero-allocation pin to every
// batched entry point: a steady-state batch must not allocate either.
func TestBatchPathNoAllocs(t *testing.T) {
	m := newBenchMachine(t)
	ops := make([]AccessOp, 8)
	for i := range ops {
		ops[i] = AccessOp{VA: 0x10000 + vm.VAddr(i*8), Size: 8, Write: i%2 == 0, Val: uint64(i)}
	}
	buf := make([]uint64, 64)
	bs := make([]byte, 96)
	if avg := testing.AllocsPerRun(1000, func() {
		m.RunAccesses(ops)
		m.StoreRun(0x10000, 8, 8, buf)
		m.LoadRun(0x10000, 8, 8, buf)
		m.StoreByteRun(0x10200, bs)
		m.LoadByteRun(0x10200, bs)
		m.CopyRun(0x11000, 0x10000, 256)
		m.CompareRun(0x11000, 0x10000, 256)
	}); avg != 0 {
		t.Fatalf("batched access path allocates %.1f objects per round, want 0", avg)
	}
}
