package machine

import (
	"testing"

	"safemem/internal/kernel"
	"safemem/internal/vm"
)

func TestPeekWordSeesCachedDirtyData(t *testing.T) {
	m := newM(t)
	m.Store64(heapBase, 0x1111)
	// The store is dirty in cache; DRAM still has the old value. PeekWord
	// must return the CPU's view.
	if got, ok := m.PeekWord(heapBase); !ok || got != 0x1111 {
		t.Fatalf("PeekWord = %#x, %v", got, ok)
	}
	m.Cache.FlushAll()
	if got, ok := m.PeekWord(heapBase); !ok || got != 0x1111 {
		t.Fatalf("PeekWord after flush = %#x, %v", got, ok)
	}
}

func TestPeekWordUnmapped(t *testing.T) {
	m := newM(t)
	if _, ok := m.PeekWord(0xdddd0000); ok {
		t.Fatal("PeekWord of unmapped address succeeded")
	}
}

func TestPeekWordIgnoresProtection(t *testing.T) {
	m := newM(t)
	m.Store64(heapBase, 7)
	if err := m.Kern.Mprotect(heapBase, 1, vm.ProtNone); err != nil {
		t.Fatal(err)
	}
	if got, ok := m.PeekWord(heapBase); !ok || got != 7 {
		t.Fatalf("scanner blocked by protection: %#x %v", got, ok)
	}
}

func TestPeekWordChargesNothing(t *testing.T) {
	m := newM(t)
	m.Store64(heapBase, 1)
	before := m.Clock.Now()
	m.PeekWord(heapBase)
	if m.Clock.Now() != before {
		t.Fatal("PeekWord advanced the clock")
	}
	loads := m.Stats().Loads
	m.PeekWord(heapBase)
	if m.Stats().Loads != loads {
		t.Fatal("PeekWord counted as a program load")
	}
}

func TestPeekWordUnaligned(t *testing.T) {
	m := newM(t)
	m.Store64(heapBase, 0x8877665544332211)
	// Peek of any byte within the word returns the containing word.
	if got, _ := m.PeekWord(heapBase + 5); got != 0x8877665544332211 {
		t.Fatalf("PeekWord mid-word = %#x", got)
	}
}

func TestAccessInFlight(t *testing.T) {
	m := newM(t)
	if _, _, _, ok := m.AccessInFlight(); ok {
		t.Fatal("access in flight outside any access")
	}
	// Probe from an ECC fault handler — exactly where SafeMem uses it.
	if err := m.Kern.MapPages(0x40000, 1); err != nil {
		t.Fatal(err)
	}
	m.Store64(0x40000, 9)
	m.Cache.FlushAll()
	if _, err := m.Kern.WatchMemory(0x40000, 64); err != nil {
		t.Fatal(err)
	}
	var gotVA vm.VAddr
	var gotSize int
	var gotWrite, gotOK bool
	m.Kern.RegisterECCFaultHandler(func(f *kernel.ECCFault) bool {
		gotVA, gotSize, gotWrite, gotOK = m.AccessInFlight()
		return m.Kern.DisableWatchMemory(f.VLine, 64) == nil
	})
	m.Store(0x40010, 2, 0xabcd)
	if !gotOK {
		t.Fatal("no access in flight during the fault")
	}
	if gotVA != 0x40010 || gotSize != 2 || !gotWrite {
		t.Fatalf("in-flight access = %#x size %d write %v", uint64(gotVA), gotSize, gotWrite)
	}
	if _, _, _, ok := m.AccessInFlight(); ok {
		t.Fatal("access still in flight after completion")
	}
}
