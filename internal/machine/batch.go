// Batched access fast lane.
//
// The per-access path (Load/Store in machine.go) pays monitor fan-out,
// in-flight bookkeeping, a translate call, a cache lookup and the
// deferred-work gate on every single access — ~14 host-ns even when the
// access is a TLB-hit cache-hit that moves one byte. Straight-line runs
// (copy loops, match loops, table scans, checksums) repeat that work for
// accesses whose outcome is identical, which is why the byte-granularity
// apps (gzip, tar) ran an order of magnitude slower per simulated
// instruction than the compute-heavy servers.
//
// RunAccesses and the LoadRun/StoreRun/CopyRun/CompareRun conveniences
// execute such runs with the checks hoisted to batch granularity:
//
//   - translation is resolved once per page window (vm.TranslateRun) and
//     protection once per access direction, instead of a translate call per
//     access;
//   - the cache line is probed once per line segment (cache.OpenLine) and
//     data moves directly against the resident line, instead of a full
//     lookup per access;
//   - clock, LRU, hit and translate accounting for a segment is settled in
//     one commit (segFlush) — one Advance of n·(CostInstr+CostCacheHit) —
//     instead of 2n Advance calls;
//   - the wake horizon (simtime.Clock.Headroom) clamps every segment so no
//     timer deadline can fall inside a batched commit.
//
// The lane is a pure host-side optimisation: simulated semantics are
// bit-identical to issuing the same accesses through Load/Store, pinned by
// TestBatchEquivalence here, per-app and campaign equivalence tests in
// internal/apps and internal/campaign, and the unchanged golden tables.
// Anything interesting bails to the exact per-access slow path; the full
// entry/bail-out matrix is documented in DESIGN.md §4.10. In brief, an
// access leaves the fast lane when:
//
//   - a per-access monitor is attached (Purify, MMP, the trace recorder):
//     the whole run is served by Load/Store so every callback fires;
//   - the batch lane is disabled (SetBatch / BatchDefault);
//   - kernel deferred work is pending (the slow access drains it at the
//     same boundary the per-access path would);
//   - the next wake deadline is too close to fit even one batched access;
//   - the page is unmapped or swapped out, or its protection forbids the
//     access (the slow path raises or resolves the fault);
//   - the cache line is not resident — misses, and with them every
//     ECC-watched or scrambled line, run the ordinary miss fill so faults,
//     bug reports and AccessInFlight behave exactly as unbatched;
//   - the access crosses an ECC-group boundary (the slow path panics with
//     the same diagnostic).
//
// After any slow access the lane drops its windows and re-derives them:
// the access may have swapped pages, retired frames, fired timers or
// flushed lines.
package machine

import (
	"encoding/binary"
	"math/bits"

	"safemem/internal/cache"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

// lineBytesLE extracts n bytes (1..8) little-endian from a line's group
// array starting at byte offset off; off+n must not exceed the line. Used by
// CompareRun to compare up to eight byte pairs per host step.
func lineBytesLE(w *[8]uint64, off, n uint64) uint64 {
	g, b := off>>3, off&7
	v := w[g] >> (b * 8)
	if b+n > 8 {
		v |= w[g+1] << ((8 - b) * 8)
	}
	if n < 8 {
		v &= 1<<(n*8) - 1
	}
	return v
}

// BatchDefault controls whether new (and recycled) machines serve batched
// runs through the fast lane. Equivalence tests flip it off to pin that the
// lane is invisible to simulated semantics.
var BatchDefault = true

// batchMode is the per-machine fast-lane override.
type batchMode int8

const (
	batchAuto batchMode = iota // follow BatchDefault
	batchForceOn
	batchForceOff
)

// batchLane is the machine's fast-lane state: the mode override plus
// host-side counters (outside Stats, like the TLB counters — they describe
// the simulator, not the simulated machine, and must not perturb goldens).
// Machine.Recycle resets all of it so a pooled machine can never leak a
// stale batch window or mode across tenants.
type batchLane struct {
	mode    batchMode
	runs    uint64 // batched runs entered through the lane
	fastOps uint64 // accesses served in-segment
	slowOps uint64 // accesses that bailed to the per-access path

	// Persistent run segments, reused across runs. Windows left open at the
	// end of a run stay valid for the next one as long as neither the cache
	// residency epoch nor the translation epoch has moved (laneSegs checks);
	// consecutive runs over the same lines (gzip's match/hash loops) then
	// skip the translate and line probe entirely.
	a, b       runSeg
	cacheEpoch uint64
	vmEpoch    uint64
}

// SetBatch pins the fast lane on or off for this machine, overriding
// BatchDefault until the next Recycle.
func (m *Machine) SetBatch(on bool) {
	if on {
		m.batch.mode = batchForceOn
	} else {
		m.batch.mode = batchForceOff
	}
}

// BatchStats returns the host-side fast-lane counters: batched runs
// entered, accesses served in-segment, and accesses that fell back to the
// per-access slow path.
func (m *Machine) BatchStats() (runs, fastOps, slowOps uint64) {
	return m.batch.runs, m.batch.fastOps, m.batch.slowOps
}

// laneOK reports whether batched runs may use the fast lane right now.
// Attached monitors demand per-access callbacks, so any monitor forces the
// whole run through Load/Store.
func (m *Machine) laneOK() bool {
	if len(m.monitors) != 0 {
		return false
	}
	switch m.batch.mode {
	case batchForceOn:
		return true
	case batchForceOff:
		return false
	default:
		return BatchDefault
	}
}

// perAccessHitCost is the exact cycle charge of one TLB-hit cache-hit
// access on the per-access path: the instruction itself plus the cache hit.
const perAccessHitCost = simtime.CostInstr + simtime.CostCacheHit

// runSeg is the open fast-lane window of one access stream: a page window
// (translation hoisted to page granularity) containing an open line segment
// (cache probe hoisted to line granularity) with uncommitted access counts.
// Dual-stream runs (CopyRun, CompareRun) hold one runSeg per stream.
type runSeg struct {
	page   vm.PageRef
	pageVA vm.VAddr
	pageOK bool

	line   cache.LineRef
	lineVA vm.VAddr
	lineOK bool

	// Uncommitted in-segment accesses, settled by segFlush.
	loads  uint64
	stores uint64

	// budget is the remaining accesses runOp may batch before the wake
	// horizon could be reached (single-stream runs only; dual-stream runs
	// budget per chunk instead).
	budget uint64
}

// segFlush commits the open line segment: the counter, clock, cache-LRU and
// translate accounting that n per-access hits would have produced, settled
// in one step. The single Advance cannot fire a wake — every path that
// accumulates ops bounds them by the headroom measured when the segment
// opened.
func (m *Machine) segFlush(seg *runSeg) {
	if n := seg.loads + seg.stores; n > 0 {
		m.stats.Loads += seg.loads
		m.stats.Stores += seg.stores
		m.instrs += n
		m.Cache.CommitRun(seg.line, n)
		seg.page.TouchRun(n)
		seg.loads, seg.stores = 0, 0
		m.Clock.Advance(simtime.Cycles(n) * perAccessHitCost)
	}
}

// segFlushPair commits two segments of a dual-stream run — first in access
// order, then second — folding both cycle charges into one Advance. The
// commit order (first before second) is what preserves the interleaved
// stream's relative LRU and touch stamps.
func (m *Machine) segFlushPair(first, second *runSeg) {
	na := first.loads + first.stores
	nb := second.loads + second.stores
	if na > 0 {
		m.stats.Loads += first.loads
		m.stats.Stores += first.stores
		m.instrs += na
		m.Cache.CommitRun(first.line, na)
		first.page.TouchRun(na)
		first.loads, first.stores = 0, 0
	}
	if nb > 0 {
		m.stats.Loads += second.loads
		m.stats.Stores += second.stores
		m.instrs += nb
		m.Cache.CommitRun(second.line, nb)
		second.page.TouchRun(nb)
		second.loads, second.stores = 0, 0
	}
	if n := na + nb; n > 0 {
		m.Clock.Advance(simtime.Cycles(n) * perAccessHitCost)
	}
}

// segReset flushes and additionally drops the segment's windows and wake
// budget.
func (m *Machine) segReset(seg *runSeg) {
	m.segFlush(seg)
	seg.pageOK = false
	seg.lineOK = false
	seg.budget = 0
}

// laneReset commits and drops BOTH persistent segments. Required before any
// slow-path access or fired wake: the access may change any translation,
// cache or timer state either window caches, including windows left open by
// a previous run.
func (m *Machine) laneReset() {
	m.segReset(&m.batch.a)
	m.segReset(&m.batch.b)
}

// laneSegs returns the machine's persistent run segments, revalidated
// against the cache-residency and translation epochs: when neither epoch has
// moved since the last run ended, any still-open windows are provably intact
// and the new run resumes without re-probing; otherwise both segments are
// dropped. Wake budgets never persist — simulated time advances between
// runs, so headroom must be re-measured.
func (m *Machine) laneSegs() (*runSeg, *runSeg) {
	a, b := &m.batch.a, &m.batch.b
	if ce, ve := m.Cache.Epoch(), m.AS.Epoch(); m.batch.cacheEpoch != ce || m.batch.vmEpoch != ve {
		*a = runSeg{}
		*b = runSeg{}
		m.batch.cacheEpoch, m.batch.vmEpoch = ce, ve
	} else {
		a.budget, b.budget = 0, 0
	}
	return a, b
}

// laneExit re-snapshots the epochs after a run: windows still open now were
// (re)derived after the run's last cache or translation mutation, so they
// remain trustworthy at the next laneSegs with these epoch values.
func (m *Machine) laneExit() {
	m.batch.cacheEpoch, m.batch.vmEpoch = m.Cache.Epoch(), m.AS.Epoch()
}

// openWindow ensures seg's page and line windows cover an access at va in
// the given direction, opening or switching them as needed (committing the
// previous segment first). false means the access must take the slow path:
// pending kernel work, an unmapped/swapped page, a protection violation, or
// a non-resident line.
func (m *Machine) openWindow(seg *runSeg, va vm.VAddr, write bool) bool {
	if m.Kern.WorkPending() {
		// The per-access path drains deferred work after every access; a
		// slow access here preserves that boundary exactly.
		return false
	}
	pageVA := va.PageAddr()
	if !seg.pageOK || seg.pageVA != pageVA {
		if seg.loads|seg.stores != 0 {
			m.segFlush(seg)
		}
		seg.lineOK = false
		pr, ok := m.AS.TranslateRun(va)
		if !ok {
			return false
		}
		seg.page, seg.pageVA, seg.pageOK = pr, pageVA, true
	}
	need := vm.ProtRead
	if write {
		need = vm.ProtWrite
	}
	if seg.page.Prot&need == 0 {
		return false
	}
	lineVA := va.LineAddr()
	if !seg.lineOK || seg.lineVA != lineVA {
		if seg.loads|seg.stores != 0 {
			m.segFlush(seg)
		}
		seg.lineOK = false
		lr, ok := m.Cache.OpenLine(seg.page.Frame + physmem.Addr(uint64(lineVA-seg.pageVA)))
		if !ok {
			return false
		}
		seg.line, seg.lineVA, seg.lineOK = lr, lineVA, true
	}
	return true
}

// wakeBudget returns how many batched accesses fit strictly before the next
// wake deadline, given costPerAccess cycles each (effectively unlimited
// when no timer is armed).
func (m *Machine) wakeBudget(costPerAccess simtime.Cycles) uint64 {
	if h, bounded := m.Clock.Headroom(); bounded {
		return uint64(h / costPerAccess)
	}
	return ^uint64(0)
}

// pairBudget returns how many more dual-stream elements (two accesses each)
// fit strictly before the next wake deadline, counting both segments'
// uncommitted accesses against the headroom. When the pending charges alone
// exhaust it, the pair is committed — advancing the clock — and the horizon
// re-measured.
func (m *Machine) pairBudget(first, second *runSeg) uint64 {
	h, bounded := m.Clock.Headroom()
	if !bounded {
		return ^uint64(0)
	}
	pend := simtime.Cycles(first.loads+first.stores+second.loads+second.stores) * perAccessHitCost
	if h <= pend {
		m.segFlushPair(first, second)
		h, _ = m.Clock.Headroom()
		pend = 0
	}
	return uint64((h - pend) / (2 * perAccessHitCost))
}

// runOp performs one access of a batched run: in-segment when the open
// window covers it, through the exact per-access slow path otherwise.
// Returns the loaded value (0 for stores).
func (m *Machine) runOp(seg *runSeg, va vm.VAddr, size int, write bool, v uint64) uint64 {
	if uint64(va)&7+uint64(size) <= 8 {
		if seg.budget == 0 {
			m.segFlush(seg)
			seg.budget = m.wakeBudget(perAccessHitCost)
		}
		if seg.budget > 0 && m.openWindow(seg, va, write) {
			off := uint64(va - seg.lineVA)
			seg.budget--
			m.batch.fastOps++
			if write {
				seg.line.Store(off, size, v)
				seg.stores++
				return 0
			}
			seg.loads++
			return seg.line.Load(off, size)
		}
	}
	m.laneReset()
	m.batch.slowOps++
	if write {
		m.Store(va, size, v)
		return 0
	}
	return m.Load(va, size)
}

// AccessOp is one element of a RunAccesses batch: a load or store of Size
// bytes at VA. For stores Val is the value to write; for loads Val receives
// the result.
type AccessOp struct {
	VA    vm.VAddr
	Val   uint64
	Size  uint8
	Write bool
}

// RunAccesses executes the batch in order, exactly equivalent to issuing
// each op through Load/Store, with validation and accounting amortized to
// batch granularity where nothing interesting is in play.
func (m *Machine) RunAccesses(batch []AccessOp) {
	if !m.laneOK() {
		for i := range batch {
			op := &batch[i]
			if op.Write {
				m.Store(op.VA, int(op.Size), op.Val)
			} else {
				op.Val = m.Load(op.VA, int(op.Size))
			}
		}
		return
	}
	m.batch.runs++
	seg, _ := m.laneSegs()
	for i := range batch {
		op := &batch[i]
		if op.Write {
			m.runOp(seg, op.VA, int(op.Size), true, op.Val)
		} else {
			op.Val = m.runOp(seg, op.VA, int(op.Size), false, 0)
		}
	}
	m.segFlush(seg)
	m.laneExit()
}

// LoadRun performs len(dst) loads of size bytes spaced stride bytes apart
// starting at va, in index order, results into dst. Equivalent to the same
// Load calls; contiguous runs (stride == size) take the tight span path.
func (m *Machine) LoadRun(va vm.VAddr, size int, stride uint64, dst []uint64) {
	if !m.laneOK() {
		for i := range dst {
			dst[i] = m.Load(va+vm.VAddr(uint64(i)*stride), size)
		}
		return
	}
	m.batch.runs++
	seg, _ := m.laneSegs()
	if stride == uint64(size) {
		m.loadSpan(seg, va, uint64(size), dst)
	} else {
		for i := range dst {
			dst[i] = m.runOp(seg, va+vm.VAddr(uint64(i)*stride), size, false, 0)
		}
	}
	m.segFlush(seg)
	m.laneExit()
}

// StoreRun performs len(src) stores of size bytes spaced stride bytes
// apart starting at va, in index order, values from src.
func (m *Machine) StoreRun(va vm.VAddr, size int, stride uint64, src []uint64) {
	if !m.laneOK() {
		for i := range src {
			m.Store(va+vm.VAddr(uint64(i)*stride), size, src[i])
		}
		return
	}
	m.batch.runs++
	seg, _ := m.laneSegs()
	if stride == uint64(size) {
		m.storeSpan(seg, va, uint64(size), src)
	} else {
		for i := range src {
			m.runOp(seg, va+vm.VAddr(uint64(i)*stride), size, true, src[i])
		}
	}
	m.segFlush(seg)
	m.laneExit()
}

// LoadByteRun reads len(b) consecutive bytes at va into b — the batched
// loadBytes/strncpy-read idiom.
func (m *Machine) LoadByteRun(va vm.VAddr, b []byte) {
	if !m.laneOK() {
		for i := range b {
			b[i] = uint8(m.Load(va+vm.VAddr(i), 1))
		}
		return
	}
	m.batch.runs++
	seg, _ := m.laneSegs()
	for len(b) > 0 {
		chunk := m.spanChunk(seg, va, 1, uint64(len(b)), false)
		if chunk == 0 {
			m.laneReset()
			m.batch.slowOps++
			b[0] = uint8(m.Load(va, 1))
			va++
			b = b[1:]
			continue
		}
		off := uint64(va - seg.lineVA)
		// Extract whole words per host step (the bytes are little-endian
		// within each group); accounting stays one load per byte.
		w := seg.line.Words()
		i := uint64(0)
		for ; i+8 <= chunk; i += 8 {
			binary.LittleEndian.PutUint64(b[i:], lineBytesLE(w, off+i, 8))
		}
		if r := chunk - i; r > 0 {
			v := lineBytesLE(w, off+i, r)
			for j := uint64(0); j < r; j++ {
				b[i+j] = uint8(v >> (8 * j))
			}
		}
		seg.loads += chunk
		m.batch.fastOps += chunk
		m.segFlush(seg)
		va += vm.VAddr(chunk)
		b = b[chunk:]
	}
	m.laneExit()
}

// StoreByteRun writes the bytes of b at consecutive addresses from va —
// the batched storeBytes/strcpy idiom.
func (m *Machine) StoreByteRun(va vm.VAddr, b []byte) {
	if !m.laneOK() {
		for i := range b {
			m.Store(va+vm.VAddr(i), 1, uint64(b[i]))
		}
		return
	}
	m.batch.runs++
	seg, _ := m.laneSegs()
	for len(b) > 0 {
		chunk := m.spanChunk(seg, va, 1, uint64(len(b)), true)
		if chunk == 0 {
			m.laneReset()
			m.batch.slowOps++
			m.Store(va, 1, uint64(b[0]))
			va++
			b = b[1:]
			continue
		}
		off := uint64(va - seg.lineVA)
		// Deposit whole words per host step (StoreBytesLE masks in n bytes
		// little-endian); accounting stays one store per byte.
		i := uint64(0)
		for ; i+8 <= chunk; i += 8 {
			seg.line.StoreBytesLE(off+i, 8, binary.LittleEndian.Uint64(b[i:]))
		}
		if r := chunk - i; r > 0 {
			var v uint64
			for j := uint64(0); j < r; j++ {
				v |= uint64(b[i+j]) << (8 * j)
			}
			seg.line.StoreBytesLE(off+i, r, v)
		}
		seg.stores += chunk
		m.batch.fastOps += chunk
		m.segFlush(seg)
		va += vm.VAddr(chunk)
		b = b[chunk:]
	}
	m.laneExit()
}

// spanChunk sizes the next fast chunk of a contiguous single-stream run at
// va: elems size-byte elements, clipped to the wake horizon and the open
// line segment. 0 means the next element must take the slow path.
func (m *Machine) spanChunk(seg *runSeg, va vm.VAddr, size, elems uint64, write bool) uint64 {
	chunk := elems
	if bud := m.wakeBudget(perAccessHitCost); bud < chunk {
		chunk = bud
	}
	if chunk == 0 || !m.openWindow(seg, va, write) {
		return 0
	}
	off := uint64(va - seg.lineVA)
	if c := (physmem.LineBytes - off) / size; c < chunk {
		chunk = c
	}
	return chunk
}

// loadSpan is the tight engine behind contiguous LoadRun.
func (m *Machine) loadSpan(seg *runSeg, va vm.VAddr, size uint64, dst []uint64) {
	for len(dst) > 0 {
		chunk := m.spanChunk(seg, va, size, uint64(len(dst)), false)
		if chunk == 0 {
			m.laneReset()
			m.batch.slowOps++
			dst[0] = m.Load(va, int(size))
			va += vm.VAddr(size)
			dst = dst[1:]
			continue
		}
		off := uint64(va - seg.lineVA)
		if size == 8 {
			g := int(off >> 3)
			for i := 0; i < int(chunk); i++ {
				dst[i] = seg.line.Word(g + i)
			}
		} else {
			for i := uint64(0); i < chunk; i++ {
				dst[i] = seg.line.Load(off+i*size, int(size))
			}
		}
		seg.loads += chunk
		m.batch.fastOps += chunk
		m.segFlush(seg)
		va += vm.VAddr(chunk * size)
		dst = dst[chunk:]
	}
}

// storeSpan is the tight engine behind contiguous StoreRun.
func (m *Machine) storeSpan(seg *runSeg, va vm.VAddr, size uint64, src []uint64) {
	for len(src) > 0 {
		chunk := m.spanChunk(seg, va, size, uint64(len(src)), true)
		if chunk == 0 {
			m.laneReset()
			m.batch.slowOps++
			m.Store(va, int(size), src[0])
			va += vm.VAddr(size)
			src = src[1:]
			continue
		}
		off := uint64(va - seg.lineVA)
		if size == 8 {
			g := int(off >> 3)
			for i := 0; i < int(chunk); i++ {
				seg.line.SetWord(g+i, src[i])
			}
		} else {
			for i := uint64(0); i < chunk; i++ {
				seg.line.Store(off+i*size, int(size), src[i])
			}
		}
		seg.stores += chunk
		m.batch.fastOps += chunk
		m.segFlush(seg)
		va += vm.VAddr(chunk * size)
		src = src[chunk:]
	}
}

// fillSpan executes elems contiguous stores of size bytes of the constant
// value v starting at va (Memset's engine); returns the address past the
// last store.
func (m *Machine) fillSpan(seg *runSeg, va vm.VAddr, size, v, elems uint64) vm.VAddr {
	for elems > 0 {
		chunk := m.spanChunk(seg, va, size, elems, true)
		if chunk == 0 {
			m.laneReset()
			m.batch.slowOps++
			m.Store(va, int(size), v)
			va += vm.VAddr(size)
			elems--
			continue
		}
		off := uint64(va - seg.lineVA)
		if size == 8 {
			g := int(off >> 3)
			for i := 0; i < int(chunk); i++ {
				seg.line.SetWord(g+i, v)
			}
		} else {
			for i := uint64(0); i < chunk; i++ {
				seg.line.Store(off+i*size, int(size), v)
			}
		}
		seg.stores += chunk
		m.batch.fastOps += chunk
		m.segFlush(seg)
		va += vm.VAddr(chunk * size)
		elems -= chunk
	}
	return va
}

// CopyRun copies n bytes from src to dst (non-overlapping regions) with
// exactly Memcpy's access sequence: an 8-byte load/store pair whenever both
// pointers are 8-aligned with at least 8 bytes left, a byte pair otherwise.
// Memcpy delegates here, so every simulated memcpy in the tree is batched.
func (m *Machine) CopyRun(dst, src vm.VAddr, n uint64) {
	if !m.laneOK() {
		for n > 0 {
			if uint64(dst)%8 == 0 && uint64(src)%8 == 0 && n >= 8 {
				m.Store(dst, 8, m.Load(src, 8))
				dst, src, n = dst+8, src+8, n-8
			} else {
				m.Store(dst, 1, m.Load(src, 1))
				dst, src, n = dst+1, src+1, n-1
			}
		}
		return
	}
	m.batch.runs++
	sseg, dseg := m.laneSegs()
	for n > 0 {
		if uint64(dst)%8 == 0 && uint64(src)%8 == 0 && n >= 8 {
			words := m.copySpan(dseg, sseg, dst, src, 8, n/8)
			dst, src, n = dst+vm.VAddr(words*8), src+vm.VAddr(words*8), n-words*8
			continue
		}
		// Byte elements: all of n when the pointers can never co-align
		// ((dst-src)%8 != 0), otherwise only up to the next co-alignment
		// point — identical to the per-iteration test of the open-coded loop.
		bytes := n
		if uint64(dst)%8 == uint64(src)%8 && n >= 8 {
			bytes = (8 - uint64(dst)%8) % 8
		}
		done := m.copySpan(dseg, sseg, dst, src, 1, bytes)
		dst, src, n = dst+vm.VAddr(done), src+vm.VAddr(done), n-done
	}
	m.segFlushPair(sseg, dseg)
	m.laneExit()
}

// copySpan copies elems elements of size bytes from src to dst through the
// dual-stream fast lane (load src element, then store dst element, per
// iteration), executing all elems; returns elems. Each chunk is clipped to
// both line segments and to the wake horizon at two accesses per element;
// the source segment commits before the destination segment, preserving
// the interleaved order's relative LRU and touch stamps.
func (m *Machine) copySpan(dseg, sseg *runSeg, dst, src vm.VAddr, size, elems uint64) uint64 {
	total := elems
	for elems > 0 {
		chunk := elems
		if bud := m.pairBudget(sseg, dseg); bud < chunk {
			chunk = bud
		}
		ok := chunk > 0 && m.openWindow(sseg, src, false) && m.openWindow(dseg, dst, true)
		if !ok {
			m.laneReset()
			m.batch.slowOps += 2
			m.Store(dst, int(size), m.Load(src, int(size)))
			dst, src, elems = dst+vm.VAddr(size), src+vm.VAddr(size), elems-1
			continue
		}
		soff := uint64(src - sseg.lineVA)
		doff := uint64(dst - dseg.lineVA)
		if size == 8 {
			if c := (physmem.LineBytes - soff) >> 3; c < chunk {
				chunk = c
			}
			if c := (physmem.LineBytes - doff) >> 3; c < chunk {
				chunk = c
			}
			dseg.line.CopyWords(int(doff>>3), sseg.line, int(soff>>3), int(chunk))
		} else {
			if c := physmem.LineBytes - soff; c < chunk {
				chunk = c
			}
			if c := physmem.LineBytes - doff; c < chunk {
				chunk = c
			}
			for i := uint64(0); i < chunk; i++ {
				dseg.line.Store(doff+i, 1, sseg.line.Load(soff+i, 1))
			}
		}
		sseg.loads += chunk
		dseg.stores += chunk
		m.batch.fastOps += 2 * chunk
		// No per-chunk commit: each stream's segment flushes at its own
		// line/page switch inside openWindow (or at CopyRun's final flush),
		// so a line split across chunks commits once, not per chunk. Line
		// retire order — and with it every relative LRU and touch stamp —
		// matches the per-access interleave: a stream's line commits at the
		// first chunk boundary after its last access, source before
		// destination within a boundary.
		dst, src, elems = dst+vm.VAddr(chunk*size), src+vm.VAddr(chunk*size), elems-chunk
	}
	return total
}

// CompareRun counts matching bytes at a and b, loading byte pairs in the
// exact interleaved order of the open-coded loop
//
//	for k < max { if Load8(a+k) != Load8(b+k) { break }; k++ }
//
// — both bytes of the first mismatching pair are loaded — and returns the
// match length k (max when no mismatch occurs). This is the batched form of
// the string/match inner loops (gzip's matchLen).
func (m *Machine) CompareRun(a, b vm.VAddr, max int) int {
	if !m.laneOK() {
		for k := 0; k < max; k++ {
			if m.Load(a+vm.VAddr(k), 1) != m.Load(b+vm.VAddr(k), 1) {
				return k
			}
		}
		return max
	}
	m.batch.runs++
	aseg, bseg := m.laneSegs()
	k := 0
	for k < max {
		chunk := uint64(max - k)
		if bud := m.pairBudget(aseg, bseg); bud < chunk {
			chunk = bud
		}
		ok := chunk > 0 && m.openWindow(aseg, a+vm.VAddr(k), false) && m.openWindow(bseg, b+vm.VAddr(k), false)
		if !ok {
			m.laneReset()
			m.batch.slowOps += 2
			av := m.Load(a+vm.VAddr(k), 1)
			bv := m.Load(b+vm.VAddr(k), 1)
			if av != bv {
				return k
			}
			k++
			continue
		}
		aoff := uint64(a+vm.VAddr(k)) - uint64(aseg.lineVA)
		boff := uint64(b+vm.VAddr(k)) - uint64(bseg.lineVA)
		if c := physmem.LineBytes - aoff; c < chunk {
			chunk = c
		}
		if c := physmem.LineBytes - boff; c < chunk {
			chunk = c
		}
		// Compare up to 8 byte pairs per step with a masked word XOR; the
		// first differing byte's index falls out of the trailing-zero count.
		// Accounting stays per byte pair — only the comparison is widened.
		aw, bw := aseg.line.Words(), bseg.line.Words()
		pairs := chunk
		mismatch := false
		for i := uint64(0); i < chunk; {
			n := chunk - i
			if n > 8 {
				n = 8
			}
			if x := lineBytesLE(aw, aoff+i, n) ^ lineBytesLE(bw, boff+i, n); x != 0 {
				pairs = i + uint64(bits.TrailingZeros64(x))/8 + 1
				mismatch = true
				break
			}
			i += n
		}
		aseg.loads += pairs
		bseg.loads += pairs
		m.batch.fastOps += 2 * pairs
		if mismatch {
			m.segFlushPair(aseg, bseg)
			m.laneExit()
			return k + int(pairs) - 1
		}
		k += int(pairs)
	}
	m.segFlushPair(aseg, bseg)
	m.laneExit()
	return max
}
