package machine

import (
	"errors"
	"testing"

	"safemem/internal/kernel"
	"safemem/internal/vm"
)

const heapBase = vm.VAddr(0x10000)

func newM(t *testing.T) *Machine {
	t.Helper()
	m, err := New(Config{MemBytes: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.MapPages(heapBase, 4); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLoadStore(t *testing.T) {
	m := newM(t)
	m.Store64(heapBase, 0x1122334455667788)
	if got := m.Load64(heapBase); got != 0x1122334455667788 {
		t.Fatalf("Load64 = %#x", got)
	}
	m.Store8(heapBase+2, 0xff)
	if got := m.Load64(heapBase); got != 0x1122334455ff7788 {
		t.Fatalf("after byte store = %#x", got)
	}
	if m.Stats().Loads != 2 || m.Stats().Stores != 2 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestMemsetMemcpy(t *testing.T) {
	m := newM(t)
	m.Memset(heapBase+3, 0xab, 13)
	for i := uint64(0); i < 13; i++ {
		if got := m.Load8(heapBase + 3 + vm.VAddr(i)); got != 0xab {
			t.Fatalf("byte %d = %#x", i, got)
		}
	}
	if m.Load8(heapBase+2) != 0 || m.Load8(heapBase+16) != 0 {
		t.Fatal("memset wrote outside its range")
	}
	m.Memcpy(heapBase+100, heapBase+3, 13)
	for i := uint64(0); i < 13; i++ {
		if m.Load8(heapBase+100+vm.VAddr(i)) != 0xab {
			t.Fatal("memcpy mismatch")
		}
	}
}

func TestUnmappedAccessIsSegfault(t *testing.T) {
	m := newM(t)
	err := m.Run(func() error {
		m.Load64(0xdead0000)
		return nil
	})
	var ae *AccessError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want AccessError", err)
	}
	if ae.Fault.Kind != vm.FaultUnmapped {
		t.Fatalf("fault kind = %v", ae.Fault.Kind)
	}
}

func TestProtectionFaultRetriedByHandler(t *testing.T) {
	m := newM(t)
	if err := m.Kern.Mprotect(heapBase, 1, vm.ProtRead); err != nil {
		t.Fatal(err)
	}
	handled := 0
	m.Kern.RegisterPageFaultHandler(func(f *vm.Fault) bool {
		handled++
		return m.Kern.Mprotect(f.Addr.PageAddr(), 1, vm.ProtRW) == nil
	})
	err := m.Run(func() error {
		m.Store64(heapBase, 5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if handled != 1 {
		t.Fatalf("handler ran %d times", handled)
	}
	if m.Load64(heapBase) != 5 {
		t.Fatal("store lost")
	}
}

func TestProtectionFaultWithoutHandlerIsSegfault(t *testing.T) {
	m := newM(t)
	if err := m.Kern.Mprotect(heapBase, 1, vm.ProtNone); err != nil {
		t.Fatal(err)
	}
	err := m.Run(func() error {
		m.Load64(heapBase)
		return nil
	})
	var ae *AccessError
	if !errors.As(err, &ae) || ae.Fault.Kind != vm.FaultProtection {
		t.Fatalf("err = %v", err)
	}
}

type countingMonitor struct {
	loads, stores int
}

func (c *countingMonitor) OnLoad(vm.VAddr, int)  { c.loads++ }
func (c *countingMonitor) OnStore(vm.VAddr, int) { c.stores++ }

func TestMonitorSeesEveryAccess(t *testing.T) {
	m := newM(t)
	mon := &countingMonitor{}
	m.AttachMonitor(mon)
	m.Store64(heapBase, 1)
	m.Load8(heapBase)
	m.Load8(heapBase + 1)
	if mon.loads != 2 || mon.stores != 1 {
		t.Fatalf("monitor saw %d/%d, want 2/1", mon.loads, mon.stores)
	}
	m.DetachMonitors()
	m.Load8(heapBase)
	if mon.loads != 2 {
		t.Fatal("detached monitor still invoked")
	}
}

func TestRunConvertsKernelPanic(t *testing.T) {
	m := newM(t)
	err := m.Run(func() error {
		m.Kern.Panic("test panic")
		return nil
	})
	var pe *kernel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
}

func TestRunConvertsAbort(t *testing.T) {
	m := newM(t)
	err := m.Run(func() error {
		Abort("bug detected at %#x", 0x1234)
		return nil
	})
	var pa *ProgramAbort
	if !errors.As(err, &pa) {
		t.Fatalf("err = %v, want ProgramAbort", err)
	}
}

func TestRunPassesThroughOtherPanics(t *testing.T) {
	m := newM(t)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	_ = m.Run(func() error {
		panic("simulator bug")
	})
}

func TestCallReturnDriveSignature(t *testing.T) {
	m := newM(t)
	m.Call(0x100)
	sig1 := m.Stack.Signature()
	m.Call(0x200)
	sig2 := m.Stack.Signature()
	if sig1 == sig2 {
		t.Fatal("signature did not change on call")
	}
	m.Return()
	if m.Stack.Signature() != sig1 {
		t.Fatal("signature not restored on return")
	}
	m.Return()
}

func TestClockAdvancesOnAccess(t *testing.T) {
	m := newM(t)
	before := m.Clock.Now()
	m.Load64(heapBase)
	if m.Clock.Now() == before {
		t.Fatal("load did not advance the clock")
	}
}

func TestDefaultConfig(t *testing.T) {
	m := MustNew(Config{})
	if m.Phys.Size() != 64<<20 {
		t.Fatalf("default mem = %d", m.Phys.Size())
	}
}
