package machine

import (
	"testing"

	"safemem/internal/vm"
)

func newBenchMachine(b testing.TB) *Machine {
	m := MustNew(Config{MemBytes: 1 << 20})
	if err := m.Kern.MapPages(0x10000, 4); err != nil {
		b.Fatal(err)
	}
	// Warm the cache and TLB so the steady state is the measured path.
	m.Store64(0x10000, 1)
	m.Load64(0x10000)
	return m
}

// BenchmarkMachineLoad measures the full simulated-load path in its steady
// state: monitor fan-out (none), TLB hit, cache hit, deferred-work gate.
func BenchmarkMachineLoad(b *testing.B) {
	m := newBenchMachine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Load(0x10000, 8)
	}
}

// BenchmarkMachineStore is the store-side counterpart.
func BenchmarkMachineStore(b *testing.B) {
	m := newBenchMachine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Store(0x10000, 8, uint64(i))
	}
}

// BenchmarkMachineLoadStride walks a multi-page region, exercising TLB and
// cache replacement rather than the single-line best case.
func BenchmarkMachineLoadStride(b *testing.B) {
	m := newBenchMachine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Load(0x10000+vm.VAddr(i*64%(4*vm.PageBytes)), 8)
	}
}

// TestAccessPathNoAllocs pins the zero-allocation property of the access
// loop: the closure+defer the loop used to carry allocated on every single
// simulated load and store.
func TestAccessPathNoAllocs(t *testing.T) {
	m := newBenchMachine(t)
	if avg := testing.AllocsPerRun(1000, func() {
		m.Load(0x10000, 8)
		m.Store(0x10008, 4, 7)
		m.Load(0x10040, 1)
		m.Compute(3)
	}); avg != 0 {
		t.Fatalf("access path allocates %.1f objects per round, want 0", avg)
	}
}
