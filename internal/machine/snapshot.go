// Machine-level snapshot/restore: the checkpoint half of the copy-on-write
// machine-image layer (internal/snapshot). Snapshot captures every
// component's state through its CaptureImage; Restore puts the SAME machine
// back into that state in O(state dirtied since), firing the exact mutation
// hooks an explicit rebuild would, so the controller's known-clean bitmap,
// the cache epochs and the batch lane can never go stale.
//
// A Snapshot is bound to its machine: timers, fault observers, ECC handlers
// and scrub hooks captured in the component images are closures over the
// warmed-up objects (kernel, tool, heap) that live alongside this machine,
// so restoring into a different machine would re-arm someone else's
// callbacks. The snapshot layer therefore pools whole warmed runners
// (machine + heap + tools + snapshot), never bare images.
package machine

import (
	"safemem/internal/cache"
	"safemem/internal/kernel"
	"safemem/internal/memctrl"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

// Snapshot is an immutable checkpoint of a Machine, taken with
// Machine.Snapshot and consumed by Machine.Restore.
type Snapshot struct {
	m     *Machine
	clock *simtime.ClockImage
	phys  *physmem.Image
	ctrl  *memctrl.Image
	cache *cache.Image
	as    *vm.Image
	kern  *kernel.Image

	nmonitors  int
	tracer     Tracer
	stats      Stats
	instrs     uint64
	stack      []uint64
	batchMode  batchMode
	sourceMark int
}

// Snapshot checkpoints the machine's complete simulated state. Intended
// capture point: a warmed-but-idle machine — heap created, tools attached,
// no program ops executed — where every component image is near-empty and
// both capture and restore stay cheap. Per-run state (fault injectors, fault
// models, scrub daemons, samplers) must not be live; the kernel image
// capture enforces the scrub-daemon half of that.
func (m *Machine) Snapshot() *Snapshot {
	return &Snapshot{
		m:          m,
		clock:      m.Clock.CaptureImage(),
		phys:       m.Phys.CaptureImage(),
		ctrl:       m.Ctrl.CaptureImage(),
		cache:      m.Cache.CaptureImage(),
		as:         m.AS.CaptureImage(),
		kern:       m.Kern.CaptureImage(),
		nmonitors:  len(m.monitors),
		tracer:     m.tracer,
		stats:      m.stats,
		instrs:     m.instrs,
		stack:      m.Stack.Snapshot(),
		batchMode:  m.batch.mode,
		sourceMark: m.Telemetry.SourceMark(),
	}
}

// Restore puts the machine back into the snapshot's state. Component restore
// order is load-bearing: the clock first (its timer truncation kills per-run
// timers, which the kernel restore relies on), then DRAM (each restored line
// fires the mutate hook into the still-to-be-restored controller, which is
// harmless — the clean bitmap is not part of the controller image), then the
// controller (mode, handlers, observer truncation, scrub filter), cache,
// address space, and finally the kernel.
//
// Telemetry sources registered after the snapshot (per-run injectors and
// fault models) are truncated away; the registry itself — and everything
// registered at or before capture — survives, so repeated restores cannot
// accumulate duplicate emitters. Monitors attached after capture are
// likewise dropped.
func (m *Machine) Restore(s *Snapshot) {
	if s.m != m {
		panic("machine: Restore with a snapshot captured from a different machine")
	}
	m.Clock.RestoreImage(s.clock)
	m.Phys.RestoreImage(s.phys)
	m.Ctrl.RestoreImage(s.ctrl)
	m.Cache.RestoreImage(s.cache)
	m.AS.RestoreImage(s.as)
	m.Kern.RestoreImage(s.kern)
	m.monitors = m.monitors[:s.nmonitors]
	m.tracer = s.tracer
	m.stats = s.stats
	m.instrs = s.instrs
	m.Stack.Restore(s.stack)
	// The batch lane's open windows hold line and page references that the
	// component restores just invalidated (both epochs moved); drop them and
	// the host-side counters, keeping only the captured mode pin.
	m.batch = batchLane{mode: s.batchMode}
	m.Telemetry.TruncateSources(s.sourceMark)
}
