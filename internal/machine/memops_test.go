package machine

import (
	"testing"

	"safemem/internal/vm"
)

// memImage reads back n bytes at va through the access path.
func memImage(m *Machine, va vm.VAddr, n uint64) []byte {
	out := make([]byte, n)
	for i := uint64(0); i < n; i++ {
		out[i] = m.Load8(va + vm.VAddr(i))
	}
	return out
}

func TestMemsetUnalignedHeadTail(t *testing.T) {
	m := newM(t)
	base := vm.VAddr(0x10000)
	// Sentinel fill so neighbouring-byte corruption is visible.
	m.Memset(base, 0xee, 64)

	// Region with an unaligned head (3 mod 8), two full words, and an
	// unaligned tail: byte stores up to base+8, word stores at base+8 and
	// base+16, byte stores for the base+24..base+28 tail.
	start, n := base+3, uint64(25)
	before := m.Stats()
	m.Memset(start, 0xab, n)
	stores := m.Stats().Stores - before.Stores
	if want := uint64(5 + 2 + 4); stores != want {
		t.Errorf("Memset(%#x, %d) issued %d stores, want %d (5 head + 2 words + 4 tail)",
			uint64(start), n, stores, want)
	}
	img := memImage(m, base, 64)
	for i, b := range img {
		want := byte(0xee)
		if uint64(i) >= 3 && uint64(i) < 3+n {
			want = 0xab
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestMemsetWithinOneWord(t *testing.T) {
	m := newM(t)
	base := vm.VAddr(0x10000)
	m.Memset(base, 0x11, 16)
	before := m.Stats()
	m.Memset(base+1, 0x22, 3) // never reaches alignment: all byte stores
	if got := m.Stats().Stores - before.Stores; got != 3 {
		t.Errorf("3-byte unaligned Memset issued %d stores, want 3", got)
	}
	want := []byte{0x11, 0x22, 0x22, 0x22, 0x11, 0x11, 0x11, 0x11}
	for i, w := range want {
		if b := m.Load8(base + vm.VAddr(i)); b != w {
			t.Fatalf("byte %d = %#x, want %#x", i, b, w)
		}
	}
}

func TestMemsetZeroLength(t *testing.T) {
	m := newM(t)
	before := m.Stats()
	m.Memset(0x10000, 0xff, 0)
	if m.Stats() != before {
		t.Fatal("zero-length Memset touched memory")
	}
}

func TestMemcpyUnalignedHeadTail(t *testing.T) {
	m := newM(t)
	src, dst := vm.VAddr(0x10000), vm.VAddr(0x11000)
	for i := uint64(0); i < 64; i++ {
		m.Store8(src+vm.VAddr(i), byte(i)^0x5a)
	}
	m.Memset(dst, 0xee, 64)

	// Both pointers 5 mod 8: the copy can never reach mutual word
	// alignment... except it can — after 3 byte copies both are 8-aligned.
	before := m.Stats()
	m.Memcpy(dst+5, src+5, 22)
	loads := m.Stats().Loads - before.Loads
	// 3 head bytes, 2 words, 3 tail bytes.
	if want := uint64(3 + 2 + 3); loads != want {
		t.Errorf("Memcpy issued %d loads, want %d", loads, want)
	}
	img := memImage(m, dst, 64)
	for i := uint64(0); i < 64; i++ {
		want := byte(0xee)
		if i >= 5 && i < 27 {
			want = byte(i) ^ 0x5a
		}
		if img[i] != want {
			t.Fatalf("dst byte %d = %#x, want %#x", i, img[i], want)
		}
	}
}

func TestMemcpyMixedAlignment(t *testing.T) {
	m := newM(t)
	src, dst := vm.VAddr(0x10000), vm.VAddr(0x11000)
	for i := uint64(0); i < 32; i++ {
		m.Store8(src+vm.VAddr(i), byte(100+i))
	}
	// dst aligned, src 1 mod 8: word alignment is never mutual, so the whole
	// copy degrades to byte traffic.
	before := m.Stats()
	m.Memcpy(dst, src+1, 16)
	if loads := m.Stats().Loads - before.Loads; loads != 16 {
		t.Errorf("mixed-alignment Memcpy issued %d loads, want 16", loads)
	}
	for i := uint64(0); i < 16; i++ {
		if b := m.Load8(dst + vm.VAddr(i)); b != byte(101+i) {
			t.Fatalf("dst byte %d = %#x, want %#x", i, b, byte(101+i))
		}
	}
}

func TestMemcpyAdjacentRegions(t *testing.T) {
	m := newM(t)
	base := vm.VAddr(0x10000)
	for i := uint64(0); i < 96; i++ {
		m.Store8(base+vm.VAddr(i), byte(i))
	}
	// Destination starts exactly where the source ends (touching, not
	// overlapping) — the closest legal call to an overlap.
	m.Memcpy(base+32, base, 32)
	img := memImage(m, base, 96)
	for i := uint64(0); i < 32; i++ {
		if img[i] != byte(i) {
			t.Fatalf("source byte %d corrupted: %#x", i, img[i])
		}
		if img[32+i] != byte(i) {
			t.Fatalf("dest byte %d = %#x, want %#x", 32+i, img[32+i], byte(i))
		}
		if img[64+i] != byte(64+i) {
			t.Fatalf("byte %d past the copy corrupted: %#x", 64+i, img[64+i])
		}
	}
	// And the mirror case: destination ends exactly where the source starts.
	m.Memcpy(base, base+32, 32)
	for i := uint64(0); i < 32; i++ {
		if b := m.Load8(base + vm.VAddr(i)); b != byte(i) {
			t.Fatalf("back-copy byte %d = %#x, want %#x", i, b, byte(i))
		}
	}
}
