// Package machine assembles the simulated computer — CPU, call stack, data
// cache, ECC memory controller, DRAM, virtual memory, kernel — and exposes
// the load/store interface simulated programs run against.
//
// Monitoring tools attach in two very different ways, mirroring the paper:
//
//   - Purify-style tools implement Monitor and are invoked on *every* load
//     and store, which is where their overhead comes from;
//   - SafeMem never sees individual accesses: it only wraps allocation
//     events and receives ECC faults through the kernel.
package machine

import (
	"fmt"

	"safemem/internal/cache"
	"safemem/internal/callstack"
	"safemem/internal/kernel"
	"safemem/internal/memctrl"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
	"safemem/internal/vm"
)

// Config sizes the machine.
type Config struct {
	// MemBytes is the physical DRAM size. Default 64 MiB.
	MemBytes uint64
	// Cache configures the data cache. Default cache.DefaultConfig.
	Cache cache.Config
	// DirectECCAccess equips the memory controller with the generalised
	// software-friendly ECC interface the paper proposes in Section 2.2.3.
	// Off by default: commodity chipsets (the paper's platform) lack it.
	DirectECCAccess bool
	// Telemetry is the metrics/trace registry the machine's components
	// register into. When nil, New creates a quiet default (tracing off, no
	// sampler) so components can stay registry-agnostic.
	Telemetry *telemetry.Registry
}

// DefaultConfig returns the standard machine configuration.
func DefaultConfig() Config {
	return Config{MemBytes: 64 << 20, Cache: cache.DefaultConfig}
}

// Monitor observes every memory access of the simulated program. This is
// the attachment point for Purify-style dynamic checkers. Implementations
// charge their own instrumentation cycles to the machine clock.
type Monitor interface {
	// OnLoad is called before a load of size bytes at va executes.
	OnLoad(va vm.VAddr, size int)
	// OnStore is called before a store of size bytes at va executes.
	OnStore(va vm.VAddr, size int)
}

// Tracer additionally observes the non-memory program events — compute
// charges and call-stack movement — that a full workload trace needs
// (package trace). Unlike monitors, at most one tracer is attached and it
// charges no cycles.
type Tracer interface {
	OnCompute(cycles uint64)
	OnCall(site uint64)
	OnReturn()
}

// AccessError is thrown (via panic) when the simulated program performs an
// access the VM cannot satisfy — the simulator's SIGSEGV.
type AccessError struct {
	Fault *vm.Fault
}

// Error implements error.
func (e *AccessError) Error() string { return "segmentation fault: " + e.Fault.Error() }

// Stats counts program-level activity.
type Stats struct {
	Loads  uint64
	Stores uint64
}

// Machine is the assembled simulated computer. Create with New.
type Machine struct {
	Clock *simtime.Clock
	Phys  *physmem.Memory
	Ctrl  *memctrl.Controller
	Cache *cache.Cache
	AS    *vm.AddressSpace
	Kern  *kernel.Kernel
	Stack *callstack.Stack

	// Telemetry is the registry every component of this machine reports into.
	Telemetry *telemetry.Registry

	monitors []Monitor
	tracer   Tracer
	stats    Stats
	// instrs counts executed simulated instructions: one per load/store plus
	// one per Compute cycle (CostInstr is 1). Kept outside Stats so existing
	// result records and JSON summaries are unchanged; the throughput
	// experiment reads it to convert host wall-clock into ns-per-instruction.
	instrs uint64
	cur    access
	// batch is the batched-access fast lane's mode and host-side counters
	// (batch.go). Reset by Recycle so pooled machines never leak a stale
	// batch window or pinned mode across tenants.
	batch batchLane
}

// access describes the load/store currently executing, if any.
type access struct {
	active bool
	write  bool
	va     vm.VAddr
	size   int
}

// New builds a machine from cfg.
func New(cfg Config) (*Machine, error) {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 64 << 20
	}
	if cfg.Cache.Sets == 0 {
		cfg.Cache = cache.DefaultConfig
	}
	clock := &simtime.Clock{}
	phys, err := physmem.New(cfg.MemBytes)
	if err != nil {
		return nil, err
	}
	ctrl := memctrl.New(phys, clock)
	if cfg.DirectECCAccess {
		ctrl.EnableDirectECCAccess()
	}
	ch, err := cache.New(ctrl, clock, cfg.Cache)
	if err != nil {
		return nil, err
	}
	as := vm.New(phys, clock)
	kern := kernel.New(clock, ctrl, ch, as)
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry("", telemetry.Config{})
	}
	m := &Machine{
		Clock: clock,
		Phys:  phys,
		Ctrl:  ctrl,
		Cache: ch,
		AS:    as,
		Kern:  kern,
		Stack: &callstack.Stack{},
	}
	m.registerTelemetry(reg)
	return m, nil
}

// registerTelemetry adopts reg as the machine's registry and registers every
// component source in the standard order. Shared by New and Recycle.
func (m *Machine) registerTelemetry(reg *telemetry.Registry) {
	reg.AttachClock(m.Clock)
	m.Telemetry = reg
	m.Phys.RegisterTelemetry(reg)
	m.Ctrl.RegisterTelemetry(reg)
	m.Cache.RegisterTelemetry(reg)
	m.AS.RegisterTelemetry(reg)
	m.Kern.RegisterTelemetry(reg)
	reg.RegisterSource("machine", func(emit func(string, float64)) {
		emit("loads", float64(m.stats.Loads))
		emit("stores", float64(m.stats.Stores))
		emit("batch_runs", float64(m.batch.runs))
		emit("batch_fast_ops", float64(m.batch.fastOps))
		emit("batch_slow_ops", float64(m.batch.slowOps))
	})
}

// Recycle resets the machine to the state New would have produced with the
// same Config, without reallocating the DRAM, cache or TLB arrays. Only
// lines the previous tenant actually touched are re-zeroed (tracked by
// physmem's mutate hook), so recycling costs proportional to the scenario's
// footprint instead of the full arena — the point of pooling machines
// across campaign scenarios.
//
// The telemetry registry is replaced with a fresh quiet one: per-scenario
// tools (safemem, heap, inject, faultmodel) register sources when they
// attach, and carrying those registrations across tenants would leave the
// registry reading freed state. Machines built with a custom cfg.Telemetry
// registry should therefore not be pooled.
//
// Note Config.DirectECCAccess does not survive: Recycle returns the
// controller to the commodity feature set; re-enable it per tenant.
func (m *Machine) Recycle() {
	m.Clock.Recycle()
	m.Phys.ZeroTouched()
	m.Ctrl.Recycle()
	m.Cache.Recycle()
	m.AS.Recycle()
	m.Kern.Recycle()
	m.Stack = &callstack.Stack{}
	m.monitors = nil
	m.tracer = nil
	m.stats = Stats{}
	m.instrs = 0
	m.cur = access{}
	m.batch = batchLane{}
	m.registerTelemetry(telemetry.NewRegistry("", telemetry.Config{}))
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// AttachMonitor registers a per-access monitor (Purify-style tool).
func (m *Machine) AttachMonitor(mon Monitor) { m.monitors = append(m.monitors, mon) }

// DetachMonitors removes all monitors.
func (m *Machine) DetachMonitors() { m.monitors = nil }

// Stats returns a copy of the access counters.
func (m *Machine) Stats() Stats { return m.stats }

// Instructions returns the simulated-instruction count executed so far (see
// the instrs field for the accounting rule).
func (m *Machine) Instructions() uint64 { return m.instrs }

// translate resolves va for a size-byte access, delivering protection
// faults to the registered user handler (the page-protection baseline) and
// retrying once if the handler claims to have resolved the fault.
func (m *Machine) translate(va vm.VAddr, write bool) physmem.Addr {
	for attempt := 0; ; attempt++ {
		pa, fault := m.AS.Translate(va, write)
		if fault == nil {
			return pa
		}
		if fault.Kind == vm.FaultProtection && attempt == 0 {
			if h := m.Kern.PageFaultHandler(); h != nil && h(fault) {
				continue
			}
		}
		panic(&AccessError{Fault: fault})
	}
}

// Load reads size bytes (1, 2, 4 or 8; must not cross an 8-byte boundary)
// at va, returned little-endian in the low bytes of the result.
func (m *Machine) Load(va vm.VAddr, size int) uint64 {
	for _, mon := range m.monitors {
		mon.OnLoad(va, size)
	}
	m.stats.Loads++
	m.instrs++
	m.Clock.Advance(simtime.CostInstr)
	// Explicit in-flight save/restore: the normal path clears cur inline,
	// and a panicking access (segfault, kernel panic, tool abort) has it
	// cleared by Run's recover. No closure, no defer — this is the hottest
	// loop in the simulator and must not allocate.
	m.cur = access{active: true, write: false, va: va, size: size}
	pa := m.translate(va, false)
	v := m.Cache.LoadBytes(pa, size)
	m.cur = access{}
	// Deferred kernel work (page retirements, watch re-arms, scrub-daemon
	// steps) runs only here, between accesses, never inside one. The common
	// case is one branch on an empty queue.
	if m.Kern.WorkPending() {
		m.Kern.RunDeferredWork()
	}
	return v
}

// Store writes the low size bytes of v at va.
func (m *Machine) Store(va vm.VAddr, size int, v uint64) {
	for _, mon := range m.monitors {
		mon.OnStore(va, size)
	}
	m.stats.Stores++
	m.instrs++
	m.Clock.Advance(simtime.CostInstr)
	m.cur = access{active: true, write: true, va: va, size: size}
	pa := m.translate(va, true)
	m.Cache.StoreBytes(pa, size, v)
	m.cur = access{}
	if m.Kern.WorkPending() {
		m.Kern.RunDeferredWork()
	}
}

// AccessInFlight describes the program access currently executing, for use
// by fault handlers. ok is false outside any access. On the paper's
// hardware this information would come from a precise ECC interrupt
// decoding the faulting instruction (Section 2.2.3); the simulator provides
// it directly, which SafeMem uses only for the uninitialized-read
// extension, exactly the enhancement the paper says precise interrupts
// would enable.
func (m *Machine) AccessInFlight() (va vm.VAddr, size int, write bool, ok bool) {
	return m.cur.va, m.cur.size, m.cur.write, m.cur.active
}

// Load8 reads one byte at va.
func (m *Machine) Load8(va vm.VAddr) uint8 { return uint8(m.Load(va, 1)) }

// Load64 reads an 8-byte word at va (must be 8-byte aligned).
func (m *Machine) Load64(va vm.VAddr) uint64 { return m.Load(va, 8) }

// Store8 writes one byte at va.
func (m *Machine) Store8(va vm.VAddr, v uint8) { m.Store(va, 1, uint64(v)) }

// Store64 writes an 8-byte word at va (must be 8-byte aligned).
func (m *Machine) Store64(va vm.VAddr, v uint64) { m.Store(va, 8, v) }

// Memset writes b to n consecutive bytes starting at va, using word stores
// where alignment allows — the simulated memset. Served through the batched
// fast lane when enabled; the access sequence (byte stores up to the first
// 8-byte boundary, word stores while at least 8 bytes remain, byte stores
// for the tail) is identical either way.
func (m *Machine) Memset(va vm.VAddr, b uint8, n uint64) {
	word := uint64(b)
	word |= word << 8
	word |= word << 16
	word |= word << 32
	end := va + vm.VAddr(n)
	if !m.laneOK() {
		for va < end {
			if uint64(va)%8 == 0 && end-va >= 8 {
				m.Store(va, 8, word)
				va += 8
			} else {
				m.Store(va, 1, uint64(b))
				va++
			}
		}
		return
	}
	m.batch.runs++
	seg, _ := m.laneSegs()
	for va < end {
		if uint64(va)%8 == 0 && end-va >= 8 {
			va = m.fillSpan(seg, va, 8, word, uint64(end-va)/8)
			continue
		}
		// Byte stores up to the next 8-byte boundary, or to the end when
		// fewer than 8 bytes remain past it.
		bytes := uint64(end - va)
		if r := (8 - uint64(va)%8) % 8; r != 0 && r < bytes {
			bytes = r
		}
		va = m.fillSpan(seg, va, 1, uint64(b), bytes)
	}
	m.segFlush(seg)
	m.laneExit()
}

// Memcpy copies n bytes from src to dst (non-overlapping), word-at-a-time
// where alignment allows. Delegates to the batched CopyRun, whose access
// sequence is identical to the historical open-coded loop.
func (m *Machine) Memcpy(dst, src vm.VAddr, n uint64) {
	m.CopyRun(dst, src, n)
}

// PeekWord reads the aligned 8-byte word containing va as the CPU would
// observe it, without charging cycles, notifying monitors, or raising
// faults. Tools use it for whole-heap scans whose cost is modelled
// separately (e.g. Purify's mark-and-sweep). Returns 0,false if va is not
// mapped.
func (m *Machine) PeekWord(va vm.VAddr) (uint64, bool) {
	// Bypass protection checks — a scanner sees all resident data — and
	// skip pages that are swapped out rather than forcing them in.
	frame, ok := m.AS.FrameOf(va)
	if !ok {
		return 0, false
	}
	pa := frame + physmem.Addr(va.PageOffset()&^7)
	return m.Cache.PeekWord(pa), true
}

// SetTracer installs (or, with nil, removes) the workload tracer.
func (m *Machine) SetTracer(tr Tracer) { m.tracer = tr }

// Compute charges n cycles of pure computation (no memory traffic).
func (m *Machine) Compute(n uint64) {
	if m.tracer != nil {
		m.tracer.OnCompute(n)
	}
	m.instrs += n
	m.Clock.Advance(simtime.Cycles(n))
	if m.Kern.WorkPending() {
		m.Kern.RunDeferredWork()
	}
}

// Call records entry into a simulated function whose call site is ret.
func (m *Machine) Call(ret uint64) {
	if m.tracer != nil {
		m.tracer.OnCall(ret)
	}
	m.Stack.Push(ret)
}

// Return records exit from the current simulated function.
func (m *Machine) Return() {
	if m.tracer != nil {
		m.tracer.OnReturn()
	}
	m.Stack.Pop()
}

// Run executes the simulated program f, converting the simulator's
// termination panics — kernel panic mode and segmentation faults — into
// ordinary errors. Any other panic is a simulator bug and is re-raised.
func (m *Machine) Run(f func() error) (err error) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		// A termination panic can unwind out of a half-finished access;
		// clear the in-flight record the access would have cleared itself.
		m.cur = access{}
		switch v := v.(type) {
		case *kernel.PanicError:
			err = v
		case *AccessError:
			err = v
		case *ProgramAbort:
			err = v
		default:
			panic(v)
		}
	}()
	return f()
}

// ProgramAbort is thrown by tools that pause/stop the program on a detected
// bug (SafeMem's "pause execution so the programmer can attach gdb").
type ProgramAbort struct {
	Reason string
}

// Error implements error.
func (p *ProgramAbort) Error() string { return "program aborted: " + p.Reason }

// Abort stops the simulated program with the given reason.
func Abort(format string, args ...any) {
	panic(&ProgramAbort{Reason: fmt.Sprintf(format, args...)})
}
