package machine

import (
	"testing"

	"safemem/internal/kernel"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

// runRecycleWorkload exercises every subsystem Recycle must reset — cache,
// controller clean bits, VM/TLB, watches, resilience queues, call stack —
// and returns a digest of all observable simulated state.
type recycleDigest struct {
	cycles   simtime.Cycles
	instrs   uint64
	mstats   Stats
	vmstats  vm.Stats
	kstats   kernel.Stats
	checksum uint64
	err      string
}

func runRecycleWorkload(t *testing.T, m *Machine) recycleDigest {
	t.Helper()
	err := m.Run(func() error {
		if err := m.Kern.MapPages(0x20000, 8); err != nil {
			return err
		}
		for i := vm.VAddr(0); i < 8*vm.PageBytes; i += 64 {
			m.Store64(0x20000+i, uint64(i)*0x9e3779b97f4a7c15)
		}
		m.Cache.FlushAll()
		// Arm a watch and trip it; the handler disarms, as SafeMem would.
		if _, err := m.Kern.WatchMemory(0x20000, 128); err != nil {
			return err
		}
		m.Kern.RegisterECCFaultHandler(func(f *kernel.ECCFault) bool {
			return m.Kern.DisableWatchMemory(f.VLine, 64) == nil
		})
		m.Load64(0x20040)
		if err := m.Kern.DisableWatchMemory(0x20000, 64); err != nil {
			return err
		}
		// Protection fault with a resolving handler.
		if err := m.Kern.Mprotect(0x21000, 1, vm.ProtRead); err != nil {
			return err
		}
		m.Kern.RegisterPageFaultHandler(func(f *vm.Fault) bool {
			return m.Kern.Mprotect(f.Addr.PageAddr(), 1, vm.ProtRW) == nil
		})
		m.Store64(0x21000, 42)
		m.AS.SwapOutLRU(2)
		m.Call(0x1234)
		m.Compute(500)
		m.Return()
		return nil
	})
	d := recycleDigest{
		cycles:  m.Clock.Now(),
		instrs:  m.Instructions(),
		mstats:  m.Stats(),
		vmstats: m.AS.Stats(),
		kstats:  m.Kern.Stats(),
	}
	if err != nil {
		d.err = err.Error()
	}
	for i := vm.VAddr(0); i < 8*vm.PageBytes; i += 8 {
		if w, ok := m.PeekWord(0x20000 + i); ok {
			d.checksum = d.checksum*31 + w
		}
	}
	return d
}

// TestMachineRecycleEquivalence pins that a recycled machine reproduces a
// fresh machine bit-for-bit: same cycles, same stats across components,
// same memory contents. The campaign-level version (pooled executor, JSON
// summaries) is TestRecycleEquivalence in internal/campaign.
func TestMachineRecycleEquivalence(t *testing.T) {
	cfg := Config{MemBytes: 1 << 22}
	fresh := runRecycleWorkload(t, MustNew(cfg))

	m := MustNew(cfg)
	_ = runRecycleWorkload(t, m) // dirty the machine
	m.Recycle()
	recycled := runRecycleWorkload(t, m)

	if recycled != fresh {
		t.Fatalf("recycled run diverges from fresh run:\nfresh:    %+v\nrecycled: %+v", fresh, recycled)
	}

	// A second recycle after an aborted (panicking) program must also come
	// back clean.
	m.Recycle()
	aborted := m.Run(func() error {
		if err := m.Kern.MapPages(0x20000, 1); err != nil {
			return err
		}
		m.Load64(0x20000)
		Abort("mid-program stop")
		return nil
	})
	if aborted == nil {
		t.Fatal("expected ProgramAbort")
	}
	if _, _, _, ok := m.AccessInFlight(); ok {
		t.Fatal("access still in flight after recovered abort")
	}
	m.Recycle()
	again := runRecycleWorkload(t, m)
	if again != fresh {
		t.Fatalf("post-abort recycled run diverges:\nfresh: %+v\ngot:   %+v", fresh, again)
	}
}
