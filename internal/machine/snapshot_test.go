package machine_test

// Machine-level snapshot/restore pins. The workload here mirrors the
// recycle-equivalence workload: it exercises every subsystem a restore must
// return to the checkpoint — cache, controller clean bits, VM/TLB, watches,
// resilience queues, call stack — and the digests must match a fresh
// machine bit-for-bit. The edge cases (page retirement, swap-out/swap-in,
// stuck-at faults planted after the checkpoint) dirty exactly the state
// whose restore handling is least obvious; the campaign and bench
// equivalence tests then pin the same property end to end.

import (
	"testing"

	"safemem/internal/ecc"
	"safemem/internal/kernel"
	"safemem/internal/machine"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

type snapDigest struct {
	cycles   simtime.Cycles
	instrs   uint64
	mstats   machine.Stats
	vmstats  vm.Stats
	kstats   kernel.Stats
	checksum uint64
	err      string
}

// runSnapWorkload drives every subsystem a restore must reset and digests
// all observable simulated state.
func runSnapWorkload(t *testing.T, m *machine.Machine) snapDigest {
	t.Helper()
	err := m.Run(func() error {
		if err := m.Kern.MapPages(0x20000, 8); err != nil {
			return err
		}
		for i := vm.VAddr(0); i < 8*vm.PageBytes; i += 64 {
			m.Store64(0x20000+i, uint64(i)*0x9e3779b97f4a7c15)
		}
		m.Cache.FlushAll()
		if _, err := m.Kern.WatchMemory(0x20000, 128); err != nil {
			return err
		}
		m.Kern.RegisterECCFaultHandler(func(f *kernel.ECCFault) bool {
			return m.Kern.DisableWatchMemory(f.VLine, 64) == nil
		})
		m.Load64(0x20040)
		if err := m.Kern.DisableWatchMemory(0x20000, 64); err != nil {
			return err
		}
		if err := m.Kern.Mprotect(0x21000, 1, vm.ProtRead); err != nil {
			return err
		}
		m.Kern.RegisterPageFaultHandler(func(f *vm.Fault) bool {
			return m.Kern.Mprotect(f.Addr.PageAddr(), 1, vm.ProtRW) == nil
		})
		m.Store64(0x21000, 42)
		m.AS.SwapOutLRU(2)
		m.Call(0x1234)
		m.Compute(500)
		m.Return()
		return nil
	})
	d := snapDigest{
		cycles:  m.Clock.Now(),
		instrs:  m.Instructions(),
		mstats:  m.Stats(),
		vmstats: m.AS.Stats(),
		kstats:  m.Kern.Stats(),
	}
	if err != nil {
		d.err = err.Error()
	}
	for i := vm.VAddr(0); i < 8*vm.PageBytes; i += 8 {
		if w, ok := m.PeekWord(0x20000 + i); ok {
			d.checksum = d.checksum*31 + w
		}
	}
	return d
}

var snapCfg = machine.Config{MemBytes: 1 << 22}

// corruptGroup scrambles the stored data of the ECC group at pa while
// leaving the check bits stale — the signature of a DRAM multi-bit fault.
func corruptGroup(m *machine.Machine, pa physmem.Addr) {
	m.Cache.FlushLine(pa.LineAddr())
	data, _ := m.Ctrl.Memory().ReadGroupRaw(pa)
	m.Ctrl.Memory().WriteGroupDataOnly(pa, ecc.Scramble(data))
}

// flipBit plants a single-bit (correctable) fault at pa — re-asserted on
// the same bit it models a stuck-at cell.
func flipBit(m *machine.Machine, pa physmem.Addr, bit uint) {
	m.Cache.FlushLine(pa.LineAddr())
	data, _ := m.Ctrl.Memory().ReadGroupRaw(pa)
	m.Ctrl.Memory().WriteGroupDataOnly(pa, data^(1<<bit))
}

// TestSnapshotRestoreEquivalence pins the core contract: a machine restored
// to its fresh-state checkpoint reproduces a fresh machine bit-for-bit,
// however thoroughly the intervening run dirtied it.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	fresh := runSnapWorkload(t, machine.MustNew(snapCfg))

	m := machine.MustNew(snapCfg)
	snap := m.Snapshot()
	if first := runSnapWorkload(t, m); first != fresh {
		t.Fatalf("pre-restore run diverges from fresh run:\nfresh: %+v\ngot:   %+v", fresh, first)
	}
	for i := 0; i < 3; i++ {
		m.Restore(snap)
		if again := runSnapWorkload(t, m); again != fresh {
			t.Fatalf("restore %d diverges from fresh run:\nfresh: %+v\ngot:   %+v", i, fresh, again)
		}
	}
}

// TestSnapshotRestoreAfterPageRetirement dirties the machine with a page
// retirement — frame quarantined, page migrated, health history charged —
// then restores and expects fresh-machine behaviour, including the reuse of
// the previously retired frame.
func TestSnapshotRestoreAfterPageRetirement(t *testing.T) {
	fresh := runSnapWorkload(t, machine.MustNew(snapCfg))

	m := machine.MustNew(snapCfg)
	snap := m.Snapshot()
	err := m.Run(func() error {
		m.Kern.SetResilience(kernel.ResilienceOptions{
			Policy:              kernel.RetireAndContinue,
			RetireThreshold:     4,
			UncorrectableWeight: 4,
		})
		if err := m.Kern.MapPages(0x40000, 2); err != nil {
			return err
		}
		m.Store64(0x40000, 0xdead)
		pa, _ := m.AS.Translate(0x40000, false)
		corruptGroup(m, pa)
		m.Load64(0x40000) // absorbed as data loss, health hits the threshold
		m.Load64(0x41000) // access boundary drains the deferred retirement
		m.Load64(0x40000)
		return nil
	})
	if err != nil {
		t.Fatalf("retirement workload: %v", err)
	}
	if m.Kern.ResilienceStats().PagesRetired == 0 {
		t.Fatal("workload did not retire a page")
	}
	m.Restore(snap)
	if got := runSnapWorkload(t, m); got != fresh {
		t.Fatalf("restore after retirement diverges:\nfresh: %+v\ngot:   %+v", fresh, got)
	}
}

// TestSnapshotRestoreAfterSwap dirties the machine with swap traffic — some
// pages swapped out and back in, some left in swap at restore time — then
// restores and expects fresh-machine behaviour.
func TestSnapshotRestoreAfterSwap(t *testing.T) {
	fresh := runSnapWorkload(t, machine.MustNew(snapCfg))

	m := machine.MustNew(snapCfg)
	snap := m.Snapshot()
	err := m.Run(func() error {
		if err := m.Kern.MapPages(0x60000, 16); err != nil {
			return err
		}
		for i := vm.VAddr(0); i < 16*vm.PageBytes; i += vm.PageBytes {
			m.Store64(0x60000+i, uint64(i)^0xabcdef)
		}
		if n := m.AS.SwapOutLRU(8); n == 0 {
			t.Error("SwapOutLRU swapped nothing")
		}
		// Touch half of the swapped pages back in; the rest stay in swap
		// across the restore.
		for i := vm.VAddr(0); i < 4*vm.PageBytes; i += vm.PageBytes {
			m.Load64(0x60000 + i)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("swap workload: %v", err)
	}
	m.Restore(snap)
	if got := runSnapWorkload(t, m); got != fresh {
		t.Fatalf("restore after swap diverges:\nfresh: %+v\ngot:   %+v", fresh, got)
	}
}

// TestSnapshotRestoreAfterStuckAtFaults models a stuck-at DRAM cell planted
// after the checkpoint — the same single bit re-asserted and demand-
// corrected repeatedly — then restores and expects fresh-machine behaviour
// (the corrected-error history and the flipped cell must both vanish).
func TestSnapshotRestoreAfterStuckAtFaults(t *testing.T) {
	fresh := runSnapWorkload(t, machine.MustNew(snapCfg))

	m := machine.MustNew(snapCfg)
	snap := m.Snapshot()
	err := m.Run(func() error {
		if err := m.Kern.MapPages(0x50000, 1); err != nil {
			return err
		}
		m.Store64(0x50000, 0x5afe)
		pa, _ := m.AS.Translate(0x50000, false)
		for i := 0; i < 4; i++ {
			flipBit(m, pa, 17) // the stuck cell re-asserts…
			m.Load64(0x50000)  // …and demand correction repairs it
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stuck-at workload: %v", err)
	}
	if m.Ctrl.Stats().CorrectedSingle == 0 {
		t.Fatal("stuck-at plants were never corrected — workload is not exercising ECC")
	}
	m.Restore(snap)
	if got := runSnapWorkload(t, m); got != fresh {
		t.Fatalf("restore after stuck-at faults diverges:\nfresh: %+v\ngot:   %+v", fresh, got)
	}
}

// TestSnapshotPathNoAllocs pins the O(dirty) restore discipline on the host
// allocator: dirtying a checkpointed machine and restoring it must settle
// to zero heap allocations per cycle — restores reuse the maps and slices
// captured with the image instead of rebuilding them.
func TestSnapshotPathNoAllocs(t *testing.T) {
	m := machine.MustNew(snapCfg)
	snap := m.Snapshot()
	cycle := func() {
		err := m.Run(func() error {
			if err := m.Kern.MapPages(0x20000, 2); err != nil {
				return err
			}
			for i := vm.VAddr(0); i < 32; i++ {
				m.Store64(0x20000+i*64, uint64(i))
			}
			m.Load64(0x20000)
			m.Cache.FlushAll()
			return nil
		})
		if err != nil {
			t.Errorf("dirty run: %v", err)
		}
		m.Restore(snap)
	}
	cycle() // warm pool capacities (fill log, frame lists, map buckets)
	if avg := testing.AllocsPerRun(20, cycle); avg > 0 {
		t.Fatalf("dirty+restore cycle allocates %.1f objects/run, want 0", avg)
	}
}
