// Package trace records and replays workload traces: the allocation events,
// call-stack movements and memory accesses of a simulated program, in a
// compact binary format.
//
// The point of traces in a SafeMem-style workflow is the production-run
// story: capture a trace of the misbehaving service once (recording is just
// the allocator hooks plus an access monitor), then replay it in-house
// under SafeMem, Purify, or any other tool — deterministically, as many
// times as needed.
//
// Accesses are recorded relative to the allocation they touch (block id +
// signed offset), not as raw addresses, so a trace replays correctly on an
// allocator with a different layout (plain malloc vs SafeMem's padded
// cache-line-aligned heap vs page-granularity guards). Out-of-bounds and
// use-after-free accesses are preserved relative to their buffer — which is
// exactly what lets a recorded bug reproduce under a different detector.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic identifies a trace stream; Version is bumped on format changes.
const (
	Magic   = "SAFEMEMTRACE"
	Version = 1
)

// Kind enumerates trace events.
type Kind uint8

const (
	// KindMalloc: Block allocation. Fields: ID, Size, Site.
	KindMalloc Kind = iota + 1
	// KindFree: deallocation. Fields: ID.
	KindFree
	// KindAccess: memory access. Fields: ID, Offset (signed), AccessSize,
	// Write.
	KindAccess
	// KindCompute: pure computation. Fields: Cycles.
	KindCompute
	// KindCall: push a call frame. Fields: Site.
	KindCall
	// KindReturn: pop a call frame.
	KindReturn
	// KindEnd terminates the stream.
	KindEnd
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindMalloc:
		return "malloc"
	case KindFree:
		return "free"
	case KindAccess:
		return "access"
	case KindCompute:
		return "compute"
	case KindCall:
		return "call"
	case KindReturn:
		return "return"
	case KindEnd:
		return "end"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one decoded trace event.
type Event struct {
	Kind Kind
	// ID identifies the allocation (malloc/free/access).
	ID uint64
	// Size is the allocation size (malloc) in bytes.
	Size uint64
	// Site is the call-site signature (malloc/call).
	Site uint64
	// Offset is the access position relative to the buffer start; it may
	// be negative (underflow) or beyond Size (overflow/UAF tails).
	Offset int64
	// AccessSize is 1, 2, 4 or 8 bytes.
	AccessSize uint8
	// Write distinguishes stores from loads.
	Write bool
	// Cycles is the computation charge (compute).
	Cycles uint64
}

// Writer encodes events to a stream.
type Writer struct {
	w      *bufio.Writer
	events uint64
	err    error
}

// NewWriter writes a trace header to w and returns the encoder.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(Version); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func (w *Writer) put(v uint64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

func (w *Writer) putSigned(v int64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

func (w *Writer) putKind(k Kind) {
	if w.err != nil {
		return
	}
	w.err = w.w.WriteByte(byte(k))
	w.events++
}

// Malloc records an allocation.
func (w *Writer) Malloc(id, size, site uint64) {
	w.putKind(KindMalloc)
	w.put(id)
	w.put(size)
	w.put(site)
}

// Free records a deallocation.
func (w *Writer) Free(id uint64) {
	w.putKind(KindFree)
	w.put(id)
}

// Access records a load or store relative to block id.
func (w *Writer) Access(id uint64, offset int64, size uint8, write bool) {
	w.putKind(KindAccess)
	w.put(id)
	w.putSigned(offset)
	flags := uint64(size)
	if write {
		flags |= 0x80
	}
	w.put(flags)
}

// Compute records a pure-computation charge.
func (w *Writer) Compute(cycles uint64) {
	w.putKind(KindCompute)
	w.put(cycles)
}

// Call records a call-frame push.
func (w *Writer) Call(site uint64) {
	w.putKind(KindCall)
	w.put(site)
}

// Return records a call-frame pop.
func (w *Writer) Return() {
	w.putKind(KindReturn)
}

// Close terminates and flushes the stream.
func (w *Writer) Close() error {
	w.putKind(KindEnd)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Events returns the number of events written (including the end marker).
func (w *Writer) Events() uint64 { return w.events }

// Err returns the first encoding error, if any.
func (w *Writer) Err() error { return w.err }

// Reader decodes a trace stream.
type Reader struct {
	r *bufio.Reader
}

// ErrBadHeader is returned when the stream is not a trace.
var ErrBadHeader = errors.New("trace: bad header")

// NewReader validates the header of r and returns the decoder.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(Magic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if string(head[:len(Magic)]) != Magic {
		return nil, ErrBadHeader
	}
	if head[len(Magic)] != Version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadHeader, head[len(Magic)], Version)
	}
	return &Reader{r: br}, nil
}

// Next decodes one event. After the end marker it returns io.EOF.
func (r *Reader) Next() (Event, error) {
	k, err := r.r.ReadByte()
	if err != nil {
		return Event{}, fmt.Errorf("trace: truncated stream: %w", err)
	}
	ev := Event{Kind: Kind(k)}
	switch ev.Kind {
	case KindMalloc:
		if ev.ID, err = binary.ReadUvarint(r.r); err == nil {
			if ev.Size, err = binary.ReadUvarint(r.r); err == nil {
				ev.Site, err = binary.ReadUvarint(r.r)
			}
		}
	case KindFree:
		ev.ID, err = binary.ReadUvarint(r.r)
	case KindAccess:
		if ev.ID, err = binary.ReadUvarint(r.r); err == nil {
			if ev.Offset, err = binary.ReadVarint(r.r); err == nil {
				var flags uint64
				if flags, err = binary.ReadUvarint(r.r); err == nil {
					ev.AccessSize = uint8(flags & 0x7f)
					ev.Write = flags&0x80 != 0
				}
			}
		}
	case KindCompute:
		ev.Cycles, err = binary.ReadUvarint(r.r)
	case KindCall:
		ev.Site, err = binary.ReadUvarint(r.r)
	case KindReturn:
	case KindEnd:
		return ev, io.EOF
	default:
		return ev, fmt.Errorf("trace: unknown event kind %d", k)
	}
	if err != nil {
		return ev, fmt.Errorf("trace: decode %v: %w", ev.Kind, err)
	}
	return ev, nil
}

// Summary aggregates a trace stream's contents.
type Summary struct {
	Events       uint64
	Mallocs      uint64
	Frees        uint64
	Loads        uint64
	Stores       uint64
	Computes     uint64
	Calls        uint64
	Returns      uint64
	BytesAlloced uint64
	// OutOfBounds counts accesses whose offset falls outside [0, size) of
	// their allocation — the recorded bugs.
	OutOfBounds uint64
	// FreedAccesses counts accesses to allocations after their free event.
	FreedAccesses uint64
}

// Summarize drains r and aggregates its events.
func Summarize(r *Reader) (Summary, error) {
	var s Summary
	sizes := map[uint64]uint64{}
	freed := map[uint64]bool{}
	for {
		ev, err := r.Next()
		if errors.Is(err, io.EOF) {
			return s, nil
		}
		if err != nil {
			return s, err
		}
		s.Events++
		switch ev.Kind {
		case KindMalloc:
			s.Mallocs++
			s.BytesAlloced += ev.Size
			sizes[ev.ID] = ev.Size
			delete(freed, ev.ID)
		case KindFree:
			s.Frees++
			freed[ev.ID] = true
		case KindAccess:
			if ev.Write {
				s.Stores++
			} else {
				s.Loads++
			}
			if freed[ev.ID] {
				s.FreedAccesses++
			} else if size, ok := sizes[ev.ID]; ok {
				if ev.Offset < 0 || uint64(ev.Offset) >= size {
					s.OutOfBounds++
				}
			}
		case KindCompute:
			s.Computes++
		case KindCall:
			s.Calls++
		case KindReturn:
			s.Returns++
		}
	}
}
