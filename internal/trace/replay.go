package trace

import (
	"errors"
	"fmt"
	"io"

	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/vm"
)

// ReplayStats summarises a replay.
type ReplayStats struct {
	Events   uint64
	Mallocs  uint64
	Frees    uint64
	Accesses uint64
	// SiteMismatches counts allocations whose replayed call-stack signature
	// differs from the recorded one (a drift indicator, not an error).
	SiteMismatches uint64
	// SkippedAccesses counts accesses to ids with no known address
	// (allocation failed during replay).
	SkippedAccesses uint64
}

// Replay executes a recorded trace against a machine and allocator — which
// may be configured completely differently from the recording pair (e.g.
// replayed onto a SafeMem-padded heap with the detector attached). Returns
// the stats and the first hard error.
//
// The caller runs it inside machine.Run if tools may abort the program:
//
//	err := m.Run(func() error { _, err := trace.Replay(r, m, alloc); return err })
func Replay(r *Reader, m *machine.Machine, alloc *heap.Allocator) (ReplayStats, error) {
	var st ReplayStats
	addrs := make(map[uint64]vm.VAddr)
	for {
		ev, err := r.Next()
		if errors.Is(err, io.EOF) {
			return st, nil
		}
		if err != nil {
			return st, err
		}
		st.Events++
		switch ev.Kind {
		case KindMalloc:
			p, err := alloc.Malloc(ev.Size)
			if err != nil {
				return st, fmt.Errorf("trace: replay malloc(%d) for id %d: %w", ev.Size, ev.ID, err)
			}
			st.Mallocs++
			addrs[ev.ID] = p
			if b, ok := alloc.BlockAt(p); ok && b.Site != ev.Site {
				st.SiteMismatches++
			}
		case KindFree:
			p, ok := addrs[ev.ID]
			if !ok {
				return st, fmt.Errorf("trace: replay free of unknown id %d", ev.ID)
			}
			if err := alloc.Free(p); err != nil {
				return st, fmt.Errorf("trace: replay free id %d: %w", ev.ID, err)
			}
			st.Frees++
			// Keep the address: later accesses to the freed buffer must
			// replay (that is the use-after-free being reproduced).
		case KindAccess:
			p, ok := addrs[ev.ID]
			if !ok {
				st.SkippedAccesses++
				continue
			}
			va := vm.VAddr(int64(p) + ev.Offset)
			st.Accesses++
			if ev.Write {
				m.Store(va, int(ev.AccessSize), uint64(st.Events))
			} else {
				m.Load(va, int(ev.AccessSize))
			}
		case KindCompute:
			m.Compute(ev.Cycles)
		case KindCall:
			m.Call(ev.Site)
		case KindReturn:
			m.Return()
		default:
			return st, fmt.Errorf("trace: replay: unexpected event %v", ev.Kind)
		}
	}
}
