package trace

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// Offline leak analysis: the Section 3 algorithm applied to a recorded
// trace instead of a live run. The trace contains every access, so the
// false-positive pruning that SafeMem performs with ECC watchpoints online
// is exact here — a suspect is exonerated by simply observing a later
// access to it. The trade-offs flip accordingly:
//
//   - online SafeMem: tiny overhead, needs ECC; pruning waits for a real
//     access to arrive;
//   - offline analysis: zero production overhead beyond trace capture, no
//     special hardware, perfect hindsight — but reports arrive only after
//     the trace is shipped home.
//
// Time is measured in trace cycles: the Compute events plus a nominal
// charge per access, mirroring the simulator's CPU-time notion.

// AnalyzeOptions parameterises the offline analyzer. The fields mirror the
// online safemem.Options thresholds.
type AnalyzeOptions struct {
	// ALeakLiveThreshold is the live count above which a never-freed group
	// is suspicious.
	ALeakLiveThreshold int
	// SLeakLifetimeFactor is the multiple of the maximal lifetime beyond
	// which an object is an outlier.
	SLeakLifetimeFactor float64
	// AccessCycleCharge approximates the CPU time of one access (the trace
	// does not carry timing for accesses).
	AccessCycleCharge uint64
}

// DefaultAnalyzeOptions returns the standard thresholds.
func DefaultAnalyzeOptions() AnalyzeOptions {
	return AnalyzeOptions{
		ALeakLiveThreshold:  24,
		SLeakLifetimeFactor: 2.0,
		AccessCycleCharge:   5,
	}
}

// LeakFinding is one suspicious allocation group found offline.
type LeakFinding struct {
	// Site and Size identify the group.
	Site uint64
	Size uint64
	// Always is true for never-freed, growing groups (ALeak).
	Always bool
	// LeakedIDs are the allocations never freed and never accessed after
	// their suspicion point.
	LeakedIDs []uint64
	// LiveAtEnd counts the group's live objects at end of trace.
	LiveAtEnd int
	// MaxLifetime is the largest observed alloc→free distance in cycles.
	MaxLifetime uint64
}

// String renders the finding.
func (f LeakFinding) String() string {
	kind := "SLeak"
	if f.Always {
		kind = "ALeak"
	}
	return fmt.Sprintf("%s group ⟨size=%d,site=%#x⟩: %d leaked object(s), %d live at end, max lifetime %d cycles",
		kind, f.Size, f.Site, len(f.LeakedIDs), f.LiveAtEnd, f.MaxLifetime)
}

// analysis state per allocation.
type allocState struct {
	id         uint64
	site, size uint64
	born       uint64 // cycles
	lastAccess uint64
	freedAt    uint64
	freed      bool
}

type groupState struct {
	site, size  uint64
	live        map[uint64]*allocState
	frees       int
	allocs      int
	maxLifetime uint64
	lastAllocAt uint64
}

// Analyze reads an entire trace and applies the offline leak analysis.
func Analyze(r *Reader, opts AnalyzeOptions) ([]LeakFinding, error) {
	if opts.SLeakLifetimeFactor == 0 {
		opts.SLeakLifetimeFactor = 2.0
	}
	if opts.ALeakLiveThreshold == 0 {
		opts.ALeakLiveThreshold = 24
	}
	var now uint64
	allocs := map[uint64]*allocState{}
	groups := map[[2]uint64]*groupState{}

	for {
		ev, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case KindCompute:
			now += ev.Cycles
		case KindMalloc:
			a := &allocState{id: ev.ID, site: ev.Site, size: ev.Size, born: now, lastAccess: now}
			allocs[ev.ID] = a
			key := [2]uint64{ev.Site, ev.Size}
			g := groups[key]
			if g == nil {
				g = &groupState{site: ev.Site, size: ev.Size, live: map[uint64]*allocState{}}
				groups[key] = g
			}
			g.live[ev.ID] = a
			g.allocs++
			g.lastAllocAt = now
		case KindFree:
			if a, ok := allocs[ev.ID]; ok && !a.freed {
				a.freed = true
				a.freedAt = now
				key := [2]uint64{a.site, a.size}
				if g := groups[key]; g != nil {
					delete(g.live, ev.ID)
					g.frees++
					if lt := now - a.born; lt > g.maxLifetime {
						g.maxLifetime = lt
					}
				}
			}
		case KindAccess:
			now += opts.AccessCycleCharge
			if a, ok := allocs[ev.ID]; ok {
				a.lastAccess = now
			}
		}
	}

	// Judgement with perfect hindsight: an object leaked if it is live at
	// the end AND was never accessed after it became an outlier (2× the
	// group's maximal lifetime past its birth), or — for never-freed
	// growing groups — never accessed again at all after its last touch
	// well before the end.
	var out []LeakFinding
	for _, g := range groups {
		if g.allocs == 0 {
			continue
		}
		f := LeakFinding{Site: g.site, Size: g.size, LiveAtEnd: len(g.live), MaxLifetime: g.maxLifetime}
		if g.frees == 0 {
			// ALeak candidate: the group never frees anything — and, per
			// Section 3.2.2, its memory usage must still be GROWING. An
			// init-time working set whose last allocation is ancient
			// history is not a continuous leak.
			if len(g.live) < opts.ALeakLiveThreshold {
				continue
			}
			if now-g.lastAllocAt > now/10 {
				continue
			}
			f.Always = true
			for id, a := range g.live {
				// Exonerate anything the program kept touching: "accessed
				// recently" = in the second half of the trace.
				if a.lastAccess > a.born && now-a.lastAccess < now/2 {
					continue
				}
				f.LeakedIDs = append(f.LeakedIDs, id)
			}
			// A growing group whose objects are all in active use is a
			// cache, not a leak.
			if len(f.LeakedIDs) < opts.ALeakLiveThreshold/2 {
				continue
			}
		} else {
			if g.maxLifetime == 0 {
				continue
			}
			limit := uint64(opts.SLeakLifetimeFactor * float64(g.maxLifetime))
			for id, a := range g.live {
				suspectAt := a.born + limit
				if suspectAt >= now {
					continue // never became an outlier within the trace
				}
				if a.lastAccess > suspectAt {
					continue // exonerated by a later access
				}
				f.LeakedIDs = append(f.LeakedIDs, id)
			}
			if len(f.LeakedIDs) == 0 {
				continue
			}
		}
		sort.Slice(f.LeakedIDs, func(i, j int) bool { return f.LeakedIDs[i] < f.LeakedIDs[j] })
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Size < out[j].Size
	})
	return out, nil
}
