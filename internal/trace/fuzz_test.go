package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace decoder: it must terminate
// with a clean EOF or an error, never panic or loop.
func FuzzReader(f *testing.F) {
	// Seed with a valid stream and a few mutations.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Call(1)
	w.Malloc(1, 64, 2)
	w.Access(1, 10, 8, true)
	w.Free(1)
	w.Return()
	_ = w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add(append(append([]byte{}, valid...), 0xff, 0x00))
	f.Add([]byte(Magic + "\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for n := 0; n < 1_000_000; n++ {
			_, err := r.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return
			}
		}
		t.Fatal("reader did not terminate")
	})
}
