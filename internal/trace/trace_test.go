package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTripAllKinds(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Call(0x1234)
	w.Malloc(7, 100, 0xabc)
	w.Access(7, -3, 1, true)
	w.Access(7, 99, 8, false)
	w.Compute(50_000)
	w.Free(7)
	w.Return()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != 8 { // 7 events + end marker
		t.Fatalf("Events = %d", w.Events())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: KindCall, Site: 0x1234},
		{Kind: KindMalloc, ID: 7, Size: 100, Site: 0xabc},
		{Kind: KindAccess, ID: 7, Offset: -3, AccessSize: 1, Write: true},
		{Kind: KindAccess, ID: 7, Offset: 99, AccessSize: 8, Write: false},
		{Kind: KindCompute, Cycles: 50_000},
		{Kind: KindFree, ID: 7},
		{Kind: KindReturn},
	}
	for i, w := range want {
		ev, err := r.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev != w {
			t.Fatalf("event %d = %+v, want %+v", i, ev, w)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("end marker: %v", err)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("NOTATRACE....")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewReader(bytes.NewBufferString("SAFEMEMTRACE\x7f")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("wrong version: %v", err)
	}
	if _, err := NewReader(bytes.NewBufferString("SA")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("short stream: %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Malloc(1, 8, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop the end marker and half the malloc.
	data := buf.Bytes()[:len(buf.Bytes())-3]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		// First event may or may not decode depending on where the cut
		// fell; drain until an error.
		for {
			if _, err := r.Next(); err != nil {
				if errors.Is(err, io.EOF) {
					t.Fatal("truncated stream reported clean EOF")
				}
				return
			}
		}
	}
}

func TestQuickAccessRoundTrip(t *testing.T) {
	f := func(id uint64, off int64, sizeSel uint8, write bool) bool {
		size := []uint8{1, 2, 4, 8}[sizeSel%4]
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		w.Access(id, off, size, write)
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		ev, err := r.Next()
		if err != nil {
			return false
		}
		return ev.Kind == KindAccess && ev.ID == id && ev.Offset == off &&
			ev.AccessSize == size && ev.Write == write
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindMalloc; k <= KindEnd; k++ {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Errorf("Kind(%d) badly named: %q", k, s)
		}
	}
}

func TestSummarize(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Call(1)
	w.Malloc(1, 100, 9)
	w.Access(1, 50, 8, true)   // in bounds store
	w.Access(1, 120, 1, false) // overflow load
	w.Free(1)
	w.Access(1, 4, 8, false) // use after free
	w.Compute(10)
	w.Return()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(r)
	if err != nil {
		t.Fatal(err)
	}
	want := Summary{
		Events: 8, Mallocs: 1, Frees: 1, Loads: 2, Stores: 1,
		Computes: 1, Calls: 1, Returns: 1, BytesAlloced: 100,
		OutOfBounds: 1, FreedAccesses: 1,
	}
	if s != want {
		t.Fatalf("summary = %+v, want %+v", s, want)
	}
}
