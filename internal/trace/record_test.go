package trace

import (
	"bytes"
	"testing"

	"safemem/internal/apps"
	safemem "safemem/internal/core"
	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/vm"
)

// recordRig is a plain (uninstrumented) machine with a recorder attached —
// the "production" side of the trace workflow.
func recordRig(t *testing.T) (*machine.Machine, *heap.Allocator, *Recorder, *bytes.Buffer) {
	t.Helper()
	m, err := machine.New(machine.Config{MemBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := heap.New(m, heap.Options{Limit: 48 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(w)
	rec.Attach(m, alloc)
	return m, alloc, rec, &buf
}

func TestRecordResolvesInAndOutOfBounds(t *testing.T) {
	m, alloc, rec, buf := recordRig(t)
	// A leading allocation keeps the page below p mapped, so the underflow
	// access below lands in arena memory rather than segfaulting.
	dummy, err := alloc.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	dummyBlk, _ := alloc.BlockAt(dummy)
	p, err := alloc.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := alloc.BlockAt(p)
	m.Store8(p+50, 1)  // in bounds
	m.Store8(p+110, 2) // past the end (rounded size 104 on the plain heap)
	_ = m.Load8(p - 1) // before the start — hits the previous block or slack
	if err := alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	_ = m.Load8(p + 4) // use after free
	if err := recCloseHelper(rec); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(buf)
	if err != nil {
		t.Fatal(err)
	}
	var accesses []Event
	for {
		ev, err := r.Next()
		if err != nil {
			break
		}
		if ev.Kind == KindAccess {
			accesses = append(accesses, ev)
		}
	}
	if len(accesses) != 4 {
		t.Fatalf("recorded %d accesses, want 4 (stats %+v)", len(accesses), rec.Stats())
	}
	if accesses[0].ID != b.Seq || accesses[0].Offset != 50 || !accesses[0].Write {
		t.Fatalf("in-bounds access = %+v", accesses[0])
	}
	if accesses[1].Offset != 110 {
		t.Fatalf("overflow access offset = %d", accesses[1].Offset)
	}
	// On the packed plain heap, p-1 is literally the last byte of the
	// previous block — the resolver attributes it there (offset 15 of the
	// 16-byte dummy), which is what that underflow corrupts in reality.
	if accesses[2].ID != dummyBlk.Seq || accesses[2].Offset != 15 {
		t.Fatalf("underflow access = %+v, want last byte of block %d", accesses[2], dummyBlk.Seq)
	}
	if accesses[3].ID != b.Seq || accesses[3].Offset != 4 {
		t.Fatalf("UAF access = %+v (should resolve to the freed block)", accesses[3])
	}
}

func recCloseHelper(rec *Recorder) error { return rec.w.Close() }

func TestRecordDropsWildAccesses(t *testing.T) {
	m, alloc, rec, _ := recordRig(t)
	if _, err := alloc.Malloc(16); err != nil {
		t.Fatal(err)
	}
	// An access megabytes away from any allocation is unattributable.
	if err := m.Kern.MapPages(0x7000000, 1); err != nil {
		t.Fatal(err)
	}
	m.Store8(0x7000000, 1)
	if rec.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d", rec.Stats().Dropped)
	}
}

func TestRecordReplayRoundTripCleanProgram(t *testing.T) {
	// Record a correct little program, replay it on a DIFFERENTLY laid-out
	// heap (SafeMem padding) with the detector attached: same behaviour,
	// zero reports.
	m, alloc, rec, buf := recordRig(t)
	var ptrs []vm.VAddr
	m.Call(0x900)
	for i := 0; i < 40; i++ {
		p, err := alloc.Malloc(uint64(16 + i*8))
		if err != nil {
			t.Fatal(err)
		}
		m.Memset(p, byte(i), uint64(16+i*8))
		ptrs = append(ptrs, p)
		m.Compute(500)
	}
	for i, p := range ptrs {
		if i%2 == 0 {
			if err := alloc.Free(p); err != nil {
				t.Fatal(err)
			}
		} else {
			_ = m.Load8(p)
		}
	}
	m.Return()
	if err := recCloseHelper(rec); err != nil {
		t.Fatal(err)
	}

	m2 := machine.MustNew(machine.Config{MemBytes: 32 << 20})
	alloc2 := heap.MustNew(m2, safemem.HeapOptions(true))
	tool, err := safemem.Attach(m2, alloc2, safemem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(buf)
	if err != nil {
		t.Fatal(err)
	}
	var st ReplayStats
	runErr := m2.Run(func() error {
		var err error
		st, err = Replay(r, m2, alloc2)
		return err
	})
	if runErr != nil {
		t.Fatalf("replay: %v", runErr)
	}
	if st.Mallocs != 40 || st.Frees != 20 {
		t.Fatalf("replay stats %+v", st)
	}
	if st.SiteMismatches != 0 {
		t.Fatalf("site mismatches: %d", st.SiteMismatches)
	}
	if reports := tool.Reports(); len(reports) != 0 {
		t.Fatalf("clean trace produced reports under SafeMem: %v", reports)
	}
	// The replayed program's live set matches the recorded one.
	if alloc2.Live() != 20 {
		t.Fatalf("live after replay = %d", alloc2.Live())
	}
}

func TestRecordedBugReproducesUnderSafeMem(t *testing.T) {
	// The production-debugging workflow end to end: record gzip with its
	// crafted input on a PLAIN machine (no tool, overflow silently
	// corrupts memory), then replay the trace in-house under SafeMem —
	// which reports the overflow.
	m, alloc, rec, buf := recordRig(t)
	app, _ := apps.Get("gzip")
	env := &apps.Env{M: m, Alloc: alloc}
	if err := m.Run(func() error { return app.Run(env, apps.Config{Seed: 42, Buggy: true}) }); err != nil {
		t.Fatalf("recording run: %v", err)
	}
	if err := recCloseHelper(rec); err != nil {
		t.Fatal(err)
	}
	if rec.Stats().Dropped != 0 {
		t.Fatalf("recorder dropped %d accesses", rec.Stats().Dropped)
	}

	m2 := machine.MustNew(machine.Config{MemBytes: 32 << 20})
	alloc2 := heap.MustNew(m2, safemem.HeapOptions(true))
	opts := safemem.DefaultOptions()
	opts.DetectLeaks = false
	tool, err := safemem.Attach(m2, alloc2, opts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(buf)
	if err != nil {
		t.Fatal(err)
	}
	runErr := m2.Run(func() error {
		_, err := Replay(r, m2, alloc2)
		return err
	})
	if runErr != nil {
		t.Fatalf("replay: %v", runErr)
	}
	foundOverflow := false
	for _, rep := range tool.Reports() {
		if rep.Kind == safemem.BugOverflow {
			foundOverflow = true
		}
	}
	if !foundOverflow {
		t.Fatalf("replayed trace did not reproduce the overflow; reports: %v", tool.Reports())
	}
}
