package trace

import (
	"sort"

	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/vm"
)

// maxResolveSlack bounds how far outside a buffer an access may land and
// still be attributed to it (covers guard-line overflows, freed-buffer
// tails and modest wild pointers).
const maxResolveSlack = 2 * vm.PageBytes

// RecorderStats counts recording activity.
type RecorderStats struct {
	Mallocs  uint64
	Frees    uint64
	Accesses uint64
	Computes uint64
	Calls    uint64
	// Dropped counts accesses that could not be attributed to any
	// allocation (too far from every known buffer).
	Dropped uint64
}

// indexed is one allocation in the recorder's address index. Freed blocks
// stay in the index (tombstoned) so use-after-free accesses still resolve;
// they are evicted when a new allocation overlaps their extent.
type indexed struct {
	addr     vm.VAddr
	size     uint64
	fullAddr vm.VAddr
	fullEnd  vm.VAddr
	id       uint64
	freed    bool
}

// Recorder captures a workload trace. Attach it to the machine and heap
// with Attach; every allocator event and memory access is encoded to the
// underlying Writer.
type Recorder struct {
	w     *Writer
	stats RecorderStats

	// byAddr is the address index, sorted by addr.
	byAddr []*indexed
	byID   map[uint64]*indexed
}

// NewRecorder wraps w.
func NewRecorder(w *Writer) *Recorder {
	return &Recorder{w: w, byID: make(map[uint64]*indexed)}
}

// Attach registers the recorder with the machine and allocator. Recording
// charges no simulated cycles: on the paper's platform this corresponds to
// trace capture via the allocator wrappers and a (hardware-assisted or
// offline) access trace.
func (r *Recorder) Attach(m *machine.Machine, alloc *heap.Allocator) {
	alloc.AddHook(r)
	m.AttachMonitor(r)
	m.SetTracer(r)
}

// Stats returns a copy of the counters.
func (r *Recorder) Stats() RecorderStats { return r.stats }

// search returns the position of the first indexed entry with addr > va.
func (r *Recorder) search(va vm.VAddr) int {
	return sort.Search(len(r.byAddr), func(i int) bool { return r.byAddr[i].addr > va })
}

// insert adds e keeping byAddr sorted, evicting tombstones its full extent
// overlaps.
func (r *Recorder) insert(e *indexed) {
	// Evict overlapped tombstones (their memory is being reused).
	kept := r.byAddr[:0]
	for _, old := range r.byAddr {
		if old.freed && old.fullAddr < e.fullEnd && e.fullAddr < old.fullEnd {
			delete(r.byID, old.id)
			continue
		}
		kept = append(kept, old)
	}
	r.byAddr = kept
	i := r.search(e.addr)
	r.byAddr = append(r.byAddr, nil)
	copy(r.byAddr[i+1:], r.byAddr[i:])
	r.byAddr[i] = e
	r.byID[e.id] = e
}

// OnAlloc implements heap.Hook.
func (r *Recorder) OnAlloc(b *heap.Block) {
	r.stats.Mallocs++
	r.w.Malloc(b.Seq, b.Size, b.Site)
	r.insert(&indexed{
		addr:     b.Addr,
		size:     b.Size,
		fullAddr: b.FullAddr,
		fullEnd:  b.FullAddr + vm.VAddr(b.FullSize),
		id:       b.Seq,
	})
}

// OnFree implements heap.Hook.
func (r *Recorder) OnFree(b *heap.Block) {
	r.stats.Frees++
	r.w.Free(b.Seq)
	if e, ok := r.byID[b.Seq]; ok {
		e.freed = true
	}
}

// resolve maps va to (allocation id, offset). Live blocks containing va win
// outright; otherwise the nearest block (live or freed) within the slack is
// chosen, preserving out-of-bounds offsets.
func (r *Recorder) resolve(va vm.VAddr) (uint64, int64, bool) {
	i := r.search(va)
	var best *indexed
	bestDist := int64(maxResolveSlack) + 1
	consider := func(e *indexed) {
		if e == nil {
			return
		}
		var dist int64
		switch {
		case va >= e.addr && uint64(va-e.addr) < e.size:
			dist = 0
		case va < e.addr:
			dist = int64(e.addr - va)
		default:
			dist = int64(uint64(va-e.addr) - e.size + 1)
		}
		if dist < bestDist {
			best, bestDist = e, dist
		}
	}
	if i > 0 {
		consider(r.byAddr[i-1])
	}
	if i < len(r.byAddr) {
		consider(r.byAddr[i])
	}
	if i > 1 {
		consider(r.byAddr[i-2]) // a freed neighbour may sit between
	}
	if best == nil {
		return 0, 0, false
	}
	return best.id, int64(va) - int64(best.addr), true
}

func (r *Recorder) access(va vm.VAddr, size int, write bool) {
	id, off, ok := r.resolve(va)
	if !ok {
		r.stats.Dropped++
		return
	}
	r.stats.Accesses++
	r.w.Access(id, off, uint8(size), write)
}

// OnLoad implements machine.Monitor.
func (r *Recorder) OnLoad(va vm.VAddr, size int) { r.access(va, size, false) }

// OnStore implements machine.Monitor.
func (r *Recorder) OnStore(va vm.VAddr, size int) { r.access(va, size, true) }

// OnCompute implements machine.Tracer.
func (r *Recorder) OnCompute(cycles uint64) {
	r.stats.Computes++
	r.w.Compute(cycles)
}

// OnCall implements machine.Tracer.
func (r *Recorder) OnCall(site uint64) {
	r.stats.Calls++
	r.w.Call(site)
}

// OnReturn implements machine.Tracer.
func (r *Recorder) OnReturn() { r.w.Return() }
