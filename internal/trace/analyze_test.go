package trace

import (
	"bytes"
	"testing"

	"safemem/internal/apps"
	"safemem/internal/heap"
	"safemem/internal/machine"
)

// synthetic builds a trace by hand: a stable group with one forgotten
// object, a touched-forever object, and an init-time working set.
func synthetic(t *testing.T) *Reader {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	id := uint64(0)
	// Init working set: 40 objects, never freed, touched throughout.
	var ws []uint64
	for i := 0; i < 40; i++ {
		id++
		w.Malloc(id, 64, 0xaaaa)
		ws = append(ws, id)
	}
	// The churn group: alloc/free pairs with ~1000-cycle lifetimes.
	var leaked, touched uint64
	for i := 0; i < 400; i++ {
		id++
		w.Malloc(id, 32, 0xbbbb)
		w.Compute(1000)
		switch i {
		case 50:
			leaked = id // never freed, never touched again
		case 51:
			touched = id // never freed, touched every iteration
		default:
			w.Free(id)
		}
		if touched != 0 {
			w.Access(touched, 0, 8, false)
		}
		w.Access(ws[i%len(ws)], 0, 8, true) // working set in active use
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_ = leaked
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAnalyzeFindsTheLeakOnly(t *testing.T) {
	findings, err := Analyze(synthetic(t), DefaultAnalyzeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
	f := findings[0]
	if f.Always || f.Site != 0xbbbb || f.Size != 32 {
		t.Fatalf("finding = %+v", f)
	}
	if len(f.LeakedIDs) != 1 {
		t.Fatalf("leaked ids = %v (the touched object must be exonerated)", f.LeakedIDs)
	}
}

func TestAnalyzeZeroValueOptionsDefaulted(t *testing.T) {
	if _, err := Analyze(synthetic(t), AnalyzeOptions{AccessCycleCharge: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeAgreesWithOnlineSafeMem(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Record ypserv2's buggy run on a plain machine, analyze the trace
	// offline, and check the offline finding names the same buggy group
	// the online detector reports (the ground-truth transaction site).
	m := machine.MustNew(machine.DefaultConfig())
	alloc := heap.MustNew(m, heap.Options{Limit: 48 << 20})
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(w)
	rec.Attach(m, alloc)
	app, _ := apps.Get("ypserv2")
	env := &apps.Env{M: m, Alloc: alloc}
	if err := m.Run(func() error { return app.Run(env, apps.Config{Seed: 42, Buggy: true}) }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Analyze(r, DefaultAnalyzeOptions())
	if err != nil {
		t.Fatal(err)
	}
	hit := false
	for _, f := range findings {
		if app.IsRealLeak(f.Site, f.Size) && len(f.LeakedIDs) > 0 {
			hit = true
		}
		if f.String() == "" {
			t.Fatal("empty rendering")
		}
	}
	if !hit {
		t.Fatalf("offline analysis missed the planted leak; findings: %v", findings)
	}
	// And the false-positive count stays small (the online Table 5 story,
	// with hindsight pruning instead of ECC watches).
	fps := 0
	for _, f := range findings {
		if !app.IsRealLeak(f.Site, f.Size) {
			fps += 1
		}
	}
	if fps > 2 {
		t.Fatalf("offline analysis produced %d false-positive groups: %v", fps, findings)
	}
}
