// Package stats provides the small numeric and rendering helpers shared by
// the experiment harness: cumulative distributions (Figure 3) and
// fixed-width text tables (Tables 2–5).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns the fraction of samples ≤ x, in [0, 1].
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(q * float64(len(c.sorted)))
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Max returns the largest sample (0 when empty).
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Table renders fixed-width text tables.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Pct formats a ratio as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Factor formats a ratio as an N.NX multiplier string.
func Factor(v float64) string { return fmt.Sprintf("%.1fX", v) }

// Summary holds descriptive statistics of a sample set.
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	// Std is the sample standard deviation (n−1 denominator); 0 for n < 2.
	Std float64
}

// Summarize computes descriptive statistics over samples.
func Summarize(samples []float64) Summary {
	s := Summary{N: len(samples)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = samples[0], samples[0]
	var sum float64
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N >= 2 {
		var ss float64
		for _, v := range samples {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}
