package stats

import "math"

// BinomPMF returns P(X = k) for X ~ Binomial(n, p), computed in log space so
// large n and tiny tail masses stay finite.
func BinomPMF(n, k int, p float64) float64 {
	if n < 0 || k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lf := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	logp := lf(n) - lf(k) - lf(n-k) +
		float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(logp)
}

// BinomTwoSidedP is the exact two-sided binomial test: the probability, under
// X ~ Binomial(n, p), of any outcome at most as likely as the observed k
// (the method of small p-values). A small result means k is surprising if the
// true success rate were p.
func BinomTwoSidedP(n, k int, p float64) float64 {
	obs := BinomPMF(n, k, p)
	// Equal-mass outcomes (the mirror tail) must count; give the comparison
	// a hair of float slack so they do.
	cutoff := obs * (1 + 1e-9)
	sum := 0.0
	for i := 0; i <= n; i++ {
		if pm := BinomPMF(n, i, p); pm <= cutoff {
			sum += pm
		}
	}
	return math.Min(sum, 1)
}
