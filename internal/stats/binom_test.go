package stats

import (
	"math"
	"testing"
)

func TestBinomPMF(t *testing.T) {
	cases := []struct {
		n, k int
		p    float64
		want float64
	}{
		{4, 2, 0.5, 6.0 / 16},
		{10, 0, 0.1, math.Pow(0.9, 10)},
		{10, 10, 0.1, math.Pow(0.1, 10)},
		{5, 3, 0, 0},
		{5, 0, 0, 1},
		{5, 5, 1, 1},
		{5, 3, 1, 0},
		{5, 6, 0.5, 0},
		{5, -1, 0.5, 0},
	}
	for _, c := range cases {
		if got := BinomPMF(c.n, c.k, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("BinomPMF(%d, %d, %v) = %v, want %v", c.n, c.k, c.p, got, c.want)
		}
	}
	sum := 0.0
	for k := 0; k <= 30; k++ {
		sum += BinomPMF(30, k, 0.3)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF over support sums to %v", sum)
	}
}

func TestBinomTwoSidedP(t *testing.T) {
	// The expected outcome is never surprising.
	if pv := BinomTwoSidedP(100, 50, 0.5); pv < 0.9 {
		t.Errorf("central outcome p-value = %v, want ~1", pv)
	}
	// A symmetric test counts both tails: 0 or 10 heads in 10 fair flips.
	want := 2 * math.Pow(0.5, 10)
	if pv := BinomTwoSidedP(10, 0, 0.5); math.Abs(pv-want) > 1e-9 {
		t.Errorf("BinomTwoSidedP(10, 0, 0.5) = %v, want %v", pv, want)
	}
	// Gross mismatches are decisively rejected.
	if pv := BinomTwoSidedP(400, 200, 0.125); pv > 1e-10 {
		t.Errorf("200/400 at p=1/8 not rejected: p-value %v", pv)
	}
	// Monotone sanity: drifting away from the mean only gets more surprising.
	prev := 1.1
	for k := 50; k >= 20; k -= 5 {
		pv := BinomTwoSidedP(100, k, 0.5)
		if pv > prev {
			t.Errorf("p-value rose from %v to %v at k=%d", prev, pv, k)
		}
		prev = pv
	}
	// Degenerate rates: p=1 demands k=n.
	if pv := BinomTwoSidedP(20, 20, 1); pv != 1 {
		t.Errorf("BinomTwoSidedP(20, 20, 1) = %v, want 1", pv)
	}
	if pv := BinomTwoSidedP(20, 19, 1); pv != 0 {
		t.Errorf("BinomTwoSidedP(20, 19, 1) = %v, want 0", pv)
	}
}
