package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 2})
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.Max() != 3 {
		t.Errorf("Max = %v", c.Max())
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || c.Max() != 0 || c.Quantile(0.5) != 0 || c.N() != 0 {
		t.Fatal("empty CDF misbehaves")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if c.Quantile(0) != 10 || c.Quantile(1) != 40 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := c.Quantile(0.5); got != 30 {
		t.Fatalf("median = %v", got)
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{5, 1}
	c := NewCDF(in)
	in[0] = 100
	if c.Max() != 5 {
		t.Fatal("CDF aliased caller slice")
	}
}

func TestQuickCDFMonotone(t *testing.T) {
	f := func(samples []float64, a, b float64) bool {
		c := NewCDF(samples)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "Name", "Value")
	tab.AddRow("short", "1")
	tab.AddRow("a-much-longer-name", "12345")
	tab.AddRow("extra-cell-dropped", "2", "IGNORED")
	out := tab.Render()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "a-much-longer-name") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if strings.Contains(out, "IGNORED") {
		t.Fatal("extra cell not dropped")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 3 rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All non-title lines share the same width.
	w := len(lines[1])
	for _, l := range lines[2:] {
		if len(strings.TrimRight(l, " ")) > w {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
	if tab.Rows() != 3 {
		t.Fatalf("Rows = %d", tab.Rows())
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Errorf("Pct = %s", Pct(0.123))
	}
	if Factor(2.5) != "2.5X" {
		t.Errorf("Factor = %s", Factor(2.5))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Std < 2.13 || s.Std > 2.15 { // sample std ≈ 2.138
		t.Fatalf("std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Std != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
	if one := Summarize([]float64{3}); one.Mean != 3 || one.Std != 0 {
		t.Fatalf("singleton = %+v", one)
	}
}
