// Package safemem_test holds the top-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation, plus
// the ablation benchmarks for the design choices called out in DESIGN.md §4.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports its headline quantities via b.ReportMetric, so the
// paper numbers appear directly in the benchmark output (overhead
// percentages, microseconds, false-positive counts, reduction factors).
package safemem_test

import (
	"fmt"
	"testing"

	"safemem/internal/apps"
	"safemem/internal/bench"
	"safemem/internal/cache"
	"safemem/internal/ecc"
	"safemem/internal/heap"
	"safemem/internal/kernel"
	"safemem/internal/machine"
	"safemem/internal/memctrl"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

var benchCfg = apps.Config{Seed: 42}

// BenchmarkTable2Syscalls measures the ECC monitoring syscalls against
// mprotect (Table 2). Paper: WatchMemory 2.0 µs, DisableWatchMemory 1.5 µs,
// mprotect 1.02 µs.
func BenchmarkTable2Syscalls(b *testing.B) {
	var last *bench.Table2
	for i := 0; i < b.N; i++ {
		t2, err := bench.RunTable2(256)
		if err != nil {
			b.Fatal(err)
		}
		last = t2
	}
	b.ReportMetric(last.WatchMemoryUS, "watch-us")
	b.ReportMetric(last.DisableWatchMemoryUS, "disable-us")
	b.ReportMetric(last.MprotectUS, "mprotect-us")
}

// table3Tools are the overhead columns of Table 3.
var table3Tools = []bench.Tool{
	bench.ToolSafeMemML,
	bench.ToolSafeMemMC,
	bench.ToolSafeMemBoth,
	bench.ToolPurify,
}

// BenchmarkTable3 measures, for every application and tool configuration,
// the run-time overhead against the uninstrumented baseline (Table 3).
// Paper: SafeMem ML+MC 1.6%–14.4%, Purify 4.8×–120×.
func BenchmarkTable3(b *testing.B) {
	for _, app := range apps.All() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			base, err := bench.Run(app.Name, bench.ToolNone, benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			if base.Err != nil {
				b.Fatalf("base run: %v", base.Err)
			}
			for _, tool := range table3Tools {
				tool := tool
				b.Run(tool.String(), func(b *testing.B) {
					var res *bench.Result
					for i := 0; i < b.N; i++ {
						res, err = bench.Run(app.Name, tool, benchCfg)
						if err != nil {
							b.Fatal(err)
						}
						if res.Err != nil {
							b.Fatalf("run: %v", res.Err)
						}
					}
					if tool == bench.ToolPurify {
						b.ReportMetric(float64(res.Cycles)/float64(base.Cycles), "slowdown-x")
					} else {
						b.ReportMetric(bench.Overhead(base.Cycles, res.Cycles)*100, "overhead-pct")
					}
					b.ReportMetric(res.Cycles.Seconds()*1000, "sim-ms")
				})
			}
		})
	}
}

// BenchmarkTable3Detection verifies (and times) bug detection on buggy
// inputs with the full SafeMem configuration — the "Bug Detected?" column.
func BenchmarkTable3Detection(b *testing.B) {
	buggy := benchCfg
	buggy.Buggy = true
	for _, app := range apps.All() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			var res *bench.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = bench.Run(app.Name, bench.ToolSafeMemBoth, buggy)
				if err != nil {
					b.Fatal(err)
				}
			}
			if !bench.DetectedBug(app, res) {
				b.Fatalf("%s: planted %v bug not detected", app.Name, app.Class)
			}
			b.ReportMetric(1, "detected")
			b.ReportMetric(float64(len(res.SafeMem)), "reports")
		})
	}
}

// BenchmarkTable4 measures the space overhead of ECC-granularity guards
// versus page-granularity guards on identical allocation traces (Table 4).
// Paper: reduction by ECC 64×–74×.
func BenchmarkTable4(b *testing.B) {
	for _, app := range apps.All() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			var row bench.Table4Row
			for i := 0; i < b.N; i++ {
				ecc, err := bench.Run(app.Name, bench.ToolSafeMemBoth, benchCfg)
				if err != nil {
					b.Fatal(err)
				}
				page, err := bench.Run(app.Name, bench.ToolPageProt, benchCfg)
				if err != nil {
					b.Fatal(err)
				}
				row = bench.Table4Row{
					ECCPct:  100 * float64(ecc.Heap.TotalWaste) / float64(ecc.Heap.TotalUser),
					PagePct: 100 * float64(page.Heap.TotalWaste) / float64(page.Heap.TotalUser),
				}
				row.ReductionX = row.PagePct / row.ECCPct
			}
			b.ReportMetric(row.ECCPct, "ecc-waste-pct")
			b.ReportMetric(row.PagePct, "page-waste-pct")
			b.ReportMetric(row.ReductionX, "reduction-x")
		})
	}
}

// BenchmarkTable5 counts false leak reports with and without ECC pruning
// (Table 5). Paper: 2–13 before pruning, 0–1 after.
func BenchmarkTable5(b *testing.B) {
	buggy := benchCfg
	buggy.Buggy = true
	for _, app := range apps.LeakApps() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			var before, after int
			for i := 0; i < b.N; i++ {
				noPrune := bench.SafeMemOptions(true, true)
				noPrune.PruneWithECC = false
				resB, err := bench.RunWithOptions(app.Name, noPrune, buggy)
				if err != nil {
					b.Fatal(err)
				}
				resA, err := bench.Run(app.Name, bench.ToolSafeMemBoth, buggy)
				if err != nil {
					b.Fatal(err)
				}
				_, before = bench.ClassifyLeaks(app, resB.SafeMem)
				_, after = bench.ClassifyLeaks(app, resA.SafeMem)
			}
			b.ReportMetric(float64(before), "fp-before")
			b.ReportMetric(float64(after), "fp-after")
		})
	}
}

// BenchmarkFigure3 runs the lifetime-stability study (Figure 3) and reports
// how early the curves saturate. Paper: all memory-object groups reach
// their stable maximal lifetime early in execution.
func BenchmarkFigure3(b *testing.B) {
	var series []bench.Figure3Series
	var err error
	for i := 0; i < b.N; i++ {
		series, err = bench.RunFigure3(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		// Fraction of groups stable by half of the run.
		half := 0.0
		for _, p := range s.Points {
			if p.TimeSec <= s.RunSec/2 {
				half = p.Pct
			}
		}
		b.ReportMetric(half, s.App+"-stable-at-halftime-pct")
	}
}

// --- Ablations (DESIGN.md §4) -------------------------------------------

// BenchmarkAblationScramblePattern quantifies why the 3 scramble bits must
// be chosen so their syndrome is invalid: the fraction of random words
// whose scrambled form decodes as Uncorrectable (must be 1.0 for the chosen
// pattern; a naive low-bit triple mostly aliases to corrections).
func BenchmarkAblationScramblePattern(b *testing.B) {
	patterns := []struct {
		name string
		mask uint64
	}{
		{"chosen-3bit", ecc.ScrambleMask()},
		{"naive-3bit", 0b111},
		{"2bit", 0b11},
	}
	for _, p := range patterns {
		p := p
		b.Run(p.name, func(b *testing.B) {
			detected := 0
			total := 0
			for i := 0; i < b.N; i++ {
				for j := 0; j < 1024; j++ {
					w := uint64(i*1024+j) * 0x9e3779b97f4a7c15
					_, _, res := ecc.Decode(w^p.mask, ecc.Encode(w))
					total++
					if res == ecc.Uncorrectable {
						detected++
					}
				}
			}
			b.ReportMetric(float64(detected)/float64(total), "detect-rate")
		})
	}
}

// BenchmarkAblationGranularity sweeps guard granularities between the cache
// line and the page, reporting waste per buffer for a representative trace.
func BenchmarkAblationGranularity(b *testing.B) {
	for _, unit := range []uint64{64, 256, 1024, 4096} {
		unit := unit
		b.Run(fmt.Sprintf("unit-%d", unit), func(b *testing.B) {
			var wastePct float64
			for i := 0; i < b.N; i++ {
				m := machine.MustNew(machine.Config{MemBytes: 48 << 20})
				alloc := heap.MustNew(m, heap.Options{Align: unit, PadBytes: unit, Limit: 40 << 20})
				for j := 0; j < 300; j++ {
					if _, err := alloc.Malloc(uint64(24 + j*37%2000)); err != nil {
						b.Fatal(err)
					}
				}
				st := alloc.Stats()
				wastePct = 100 * float64(st.WasteLive) / float64(st.BytesLive)
			}
			b.ReportMetric(wastePct, "waste-pct")
		})
	}
}

// BenchmarkAblationNoFlush shows why WatchMemory must flush the watched
// lines from the cache: with the flush, the first access always faults;
// scrambling DRAM behind a valid cached copy is never noticed.
func BenchmarkAblationNoFlush(b *testing.B) {
	run := func(b *testing.B, flush bool) float64 {
		detected, total := 0, 0
		for i := 0; i < b.N; i++ {
			clock := &simtime.Clock{}
			mem := physmem.MustNew(1 << 20)
			ctrl := memctrl.New(mem, clock)
			ch := cache.MustNew(ctrl, clock, cache.DefaultConfig)
			faults := 0
			ctrl.SetInterruptHandler(func(r memctrl.FaultReport) {
				faults++
				orig := ecc.Scramble(r.Data)
				mem.WriteGroupRaw(r.Group, orig, uint8(ecc.Encode(orig)))
			})
			for line := physmem.Addr(0); line < 64*64; line += 64 {
				ch.StoreWord(line, uint64(line)) // line now cached (dirty)
				ch.FlushLine(line)               // write data back
				ch.LoadWord(line)                // re-cache it clean
				if flush {
					ch.FlushLine(line)
				}
				// Scramble DRAM, stale check bits (the watch).
				d, _ := mem.ReadGroupRaw(line)
				mem.WriteGroupDataOnly(line, ecc.Scramble(d))
				before := faults
				ch.LoadWord(line) // the program's first access
				total++
				if faults > before {
					detected++
				}
			}
		}
		return float64(detected) / float64(total)
	}
	b.Run("with-flush", func(b *testing.B) {
		b.ReportMetric(run(b, true), "detect-rate")
	})
	b.Run("no-flush", func(b *testing.B) {
		b.ReportMetric(run(b, false), "detect-rate")
	})
}

// BenchmarkAblationCheckingPeriod sweeps the leak-detection checking period
// on ypserv1 and reports the ML-only overhead: amortising detection to
// allocation time keeps even aggressive periods cheap.
func BenchmarkAblationCheckingPeriod(b *testing.B) {
	base, err := bench.Run("ypserv1", bench.ToolNone, benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, periodUS := range []float64{250, 1000, 4000} {
		periodUS := periodUS
		b.Run(fmt.Sprintf("period-%.0fus", periodUS), func(b *testing.B) {
			var overhead float64
			for i := 0; i < b.N; i++ {
				opts := bench.SafeMemOptions(true, false)
				opts.CheckingPeriod = simtime.FromMicroseconds(periodUS)
				res, err := bench.RunWithOptions("ypserv1", opts, benchCfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				overhead = bench.Overhead(base.Cycles, res.Cycles) * 100
			}
			b.ReportMetric(overhead, "ml-overhead-pct")
		})
	}
}

// BenchmarkAblationPinning compares WatchMemory's page pinning against the
// swap hazard: without pinning, an LRU pass destroys the watch silently.
func BenchmarkAblationPinning(b *testing.B) {
	survived := 0
	total := 0
	for i := 0; i < b.N; i++ {
		clock := &simtime.Clock{}
		mem := physmem.MustNew(1 << 20)
		ctrl := memctrl.New(mem, clock)
		ch := cache.MustNew(ctrl, clock, cache.DefaultConfig)
		as := vm.New(mem, clock)
		k := kernel.New(clock, ctrl, ch, as)
		if err := k.MapPages(0x10000, 8); err != nil {
			b.Fatal(err)
		}
		if _, err := k.WatchMemory(0x10000, 64); err != nil {
			b.Fatal(err)
		}
		as.SwapOutLRU(8) // memory pressure
		total++
		if as.Present(0x10000) && k.Watched(0x10000) {
			survived++
		}
	}
	b.ReportMetric(float64(survived)/float64(total), "watch-survival-rate")
}

// BenchmarkExtensionDirectECC evaluates the paper's proposed generalised
// ECC interface (Section 2.2.3): with direct check-bit access, watchpoints
// need no bus lock, no chipset mode switches and no data scrambling. The
// benchmark reports both the syscall-level saving and the resulting
// whole-application MC overhead next to the commodity path.
func BenchmarkExtensionDirectECC(b *testing.B) {
	b.Run("syscall", func(b *testing.B) {
		var classicUS, directUS float64
		for i := 0; i < b.N; i++ {
			measure := func(direct bool) float64 {
				clock := &simtime.Clock{}
				mem := physmem.MustNew(1 << 20)
				ctrl := memctrl.New(mem, clock)
				if direct {
					ctrl.EnableDirectECCAccess()
				}
				ch := cache.MustNew(ctrl, clock, cache.DefaultConfig)
				as := vm.New(mem, clock)
				k := kernel.New(clock, ctrl, ch, as)
				if err := k.MapPages(0x10000, 4); err != nil {
					b.Fatal(err)
				}
				start := clock.Now()
				const n = 64
				for j := 0; j < n; j++ {
					line := vm.VAddr(0x10000 + j*64)
					if _, err := k.WatchMemory(line, 64); err != nil {
						b.Fatal(err)
					}
					if err := k.DisableWatchMemory(line, 64); err != nil {
						b.Fatal(err)
					}
				}
				return (clock.Now() - start).Microseconds() / n
			}
			classicUS = measure(false)
			directUS = measure(true)
		}
		b.ReportMetric(classicUS, "classic-pair-us")
		b.ReportMetric(directUS, "direct-pair-us")
		b.ReportMetric(classicUS/directUS, "speedup-x")
	})
	for _, name := range []string{"ypserv1", "gzip"} {
		name := name
		b.Run(name, func(b *testing.B) {
			base, err := bench.Run(name, bench.ToolNone, benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			var classic, direct float64
			for i := 0; i < b.N; i++ {
				c, err := bench.Run(name, bench.ToolSafeMemBoth, benchCfg)
				if err != nil {
					b.Fatal(err)
				}
				mcfg := machine.DefaultConfig()
				mcfg.DirectECCAccess = true
				d, err := bench.RunWithMachine(name, bench.ToolSafeMemBoth, benchCfg, mcfg)
				if err != nil {
					b.Fatal(err)
				}
				classic = bench.Overhead(base.Cycles, c.Cycles) * 100
				direct = bench.Overhead(base.Cycles, d.Cycles) * 100
			}
			b.ReportMetric(classic, "classic-overhead-pct")
			b.ReportMetric(direct, "direct-overhead-pct")
		})
	}
}

// BenchmarkExtensionMMP evaluates the other hardware direction the paper
// discusses (Section 2.2.4): Mondrian-style word-granularity protection.
// Zero guard padding (the space-overhead endpoint of Table 4), exact
// off-by-one detection, and no per-access software cost — at the price of
// hardware that "still does not exist".
func BenchmarkExtensionMMP(b *testing.B) {
	for _, name := range []string{"ypserv1", "gzip"} {
		name := name
		b.Run(name, func(b *testing.B) {
			base, err := bench.Run(name, bench.ToolNone, benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			var res *bench.Result
			for i := 0; i < b.N; i++ {
				res, err = bench.Run(name, bench.ToolMMP, benchCfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
			b.ReportMetric(bench.Overhead(base.Cycles, res.Cycles)*100, "overhead-pct")
			b.ReportMetric(100*float64(res.Heap.TotalWaste)/float64(res.Heap.TotalUser), "waste-pct")
			if len(res.MMP) != 0 {
				b.Fatalf("normal inputs produced MMP reports: %v", res.MMP)
			}
		})
	}
	// Detection parity: the planted overflows and freed accesses are caught
	// at word granularity too.
	b.Run("detection", func(b *testing.B) {
		buggy := benchCfg
		buggy.Buggy = true
		detected := 0
		for i := 0; i < b.N; i++ {
			detected = 0
			for _, name := range []string{"gzip", "tar", "squid2"} {
				res, err := bench.Run(name, bench.ToolMMP, buggy)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.MMP) > 0 {
					detected++
				}
			}
		}
		b.ReportMetric(float64(detected), "bugs-detected-of-3")
	})
}

// BenchmarkPageProtBaseline times the page-protection corruption detector
// on the corruption apps, for comparison with SafeMem's MC column.
func BenchmarkPageProtBaseline(b *testing.B) {
	for _, name := range []string{"gzip", "tar"} {
		name := name
		b.Run(name, func(b *testing.B) {
			base, err := bench.Run(name, bench.ToolNone, benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			var res *bench.Result
			for i := 0; i < b.N; i++ {
				res, err = bench.Run(name, bench.ToolPageProt, benchCfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(bench.Overhead(base.Cycles, res.Cycles)*100, "overhead-pct")
		})
	}
}
